module Ast = Flex_sql.Ast
module Vec = Row_vec

(* Columnar batch execution over {!Chunk} columns. The recognizer accepts a
   subset of queries — single-table scans and left-deep INNER equijoins with
   conjunctive filters, column projections/group keys, and the standard
   aggregates — and runs them through vectorized kernels: filters become
   selection vectors over typed arrays (no row materialisation), the hash
   equijoin extracts keys column-wise (with the dense-int counting-sort fast
   path of the row engine), GROUP BY aggregates accumulate into per-group
   typed arrays, and ORDER BY+LIMIT runs {!Key_sort} top-K over column key
   arrays. Everything else returns [None] and the row pipeline runs as
   before.

   Bit-identity contract: for every accepted query, the result must be
   bit-identical to the row pipeline — same rows, same order, same float
   bits — because DP releases must not change when this engine is toggled.
   The kernels therefore replicate the row pipeline's evaluation orders
   exactly (probe-side row order in joins with build-row-order candidates,
   first-appearance group order, ascending per-group accumulation, the
   sort tiebreak on row index), and output cells are fetched as the
   already-boxed values of the original table rows wherever possible.
   Anywhere a divergence cannot be ruled out statically, the recognizer
   bails; anywhere the row pipeline could raise a semantic error that the
   columnar plan might not (it evaluates filters on pre-join supersets, so
   its error set is a superset — never a subset — of the row pipeline's),
   errors are caught and the query falls back to the row path, which then
   decides between result and error exactly as before. *)

type header = Compiled.header = { alias : string option; name : string }

type result_set = { chead : header array; crows : Value.t array Vec.t }

let enabled = ref true

(* Raised when recognition or execution leaves the supported subset;
   callers translate it to [None]. *)
exception Fallback

let fallback : unit -> 'a = fun () -> raise Fallback

let two_53 = 9007199254740992

(* --- recognition ----------------------------------------------------------- *)

let no_subquery e = Ast.expr_subqueries e = []

let has_aggregate e =
  Ast.fold_expr (fun acc e -> acc || match e with Ast.Agg _ -> true | _ -> false) false e

let plain_expr e = if (not (no_subquery e)) || has_aggregate e then fallback ()

type step = {
  s_table : Table.t;
  s_alias : string option;
  s_cond : Ast.expr option; (* ON condition joining this table to the prefix *)
  mutable s_groups : (Ast.expr list * bool) list;
      (* predicate groups in application order; a group is the per-table
         slice of one source predicate's conjuncts, flagged [true] when the
         source predicate had several (so non-boolean conjunct values must
         fall back: the row engine's AND would error) *)
}

let step_of_table db name alias cond =
  match Database.find_opt db name with
  | None -> fallback ()
  | Some t ->
      let alias = match alias with Some a -> Some a | None -> Some (Table.name t) in
      { s_table = t; s_alias = alias; s_cond = cond; s_groups = [] }

let rec flatten_tref db (tr : Ast.table_ref) acc =
  match tr with
  | Ast.Table { name; alias } -> step_of_table db name alias None :: acc
  | Ast.Join { kind = Ast.Inner; left; right = Ast.Table { name; alias }; cond = Ast.On e }
    ->
      flatten_tref db left (step_of_table db name alias (Some e) :: acc)
  | _ -> fallback ()

(* A plan-side scan chain: Filter* over Scan, predicates innermost first. *)
let rec scan_chain db (r : Plan.rel) preds =
  match r with
  | Plan.Filter { pred; input } -> scan_chain db input (pred :: preds)
  | Plan.Scan { table; alias } -> (step_of_table db table (Some alias) None, preds)
  | _ -> fallback ()

let rec is_scan_chain = function
  | Plan.Scan _ -> true
  | Plan.Filter { input; _ } -> is_scan_chain input
  | _ -> false

(* Steps left to right, plus predicates sitting above join subtrees, each
   with the number of prefix tables its columns must resolve within. *)
let rec flatten_rel db (r : Plan.rel) : (step * Ast.expr list) list * (int * Ast.expr) list
    =
  match r with
  | Plan.Scan _ -> ([ scan_chain db r [] ], [])
  | Plan.Filter { input; pred } ->
      if is_scan_chain r then ([ scan_chain db r [] ], [])
      else begin
        let steps, preds = flatten_rel db input in
        (steps, preds @ [ (List.length steps, pred) ])
      end
  | Plan.Join { kind = Ast.Inner; cond = Ast.On e; build_left = false; left; right } ->
      let steps, preds = flatten_rel db left in
      let step, sfs = scan_chain db right [] in
      (steps @ [ ({ step with s_cond = Some e }, sfs) ], preds)
  | _ -> fallback ()

(* --- the slab: combined headers over per-table chunks ----------------------- *)

type ctx = {
  pool : Task_pool.t option;
  chunks : Chunk.t array;
  headers : header array; (* full combined, alias-qualified *)
  col_tbl : int array; (* combined column -> table index *)
  col_off : int array; (* combined column -> offset within its table *)
  tbl_start : int array; (* table index -> first combined column *)
}

(* Logical rows over the joined tables: [n] rows, each mapping through
   [maps.(t)] to a physical row of table [t] ([None] = identity). Map
   composition after a join is lazy: tables never read downstream (not
   projected, ordered, grouped or join-probed) never pay for it. Forcing
   happens on the coordinating thread before any parallel section. *)
type slab = { n : int; maps : int array option Lazy.t array }

let map_of (slab : slab) t = Lazy.force slab.maps.(t)

let ctx_of_steps pool (steps : step array) : ctx =
  let chunks = Array.map (fun s -> Chunk.of_table s.s_table) steps in
  let headers = Vec.create () and col_tbl = Vec.create () and col_off = Vec.create () in
  let tbl_start = Array.make (Array.length steps) 0 in
  Array.iteri
    (fun t (s : step) ->
      tbl_start.(t) <- Vec.length headers;
      Array.iteri
        (fun j name ->
          Vec.push headers { alias = s.s_alias; name };
          Vec.push col_tbl t;
          Vec.push col_off j)
        (Table.columns s.s_table))
    steps;
  {
    pool;
    chunks;
    headers = Vec.to_array headers;
    col_tbl = Vec.to_array col_tbl;
    col_off = Vec.to_array col_off;
    tbl_start;
  }

let phys_of (slab : slab) t : int -> int =
  match map_of slab t with None -> (fun i -> i) | Some m -> fun i -> m.(i)

(* Boxed cell fetch by logical row, through the original table rows. *)
let fetcher ctx (slab : slab) ci : int -> Value.t =
  let t = ctx.col_tbl.(ci) in
  let rows = ctx.chunks.(t).Chunk.rows and off = ctx.col_off.(ci) in
  match map_of slab t with
  | None -> fun i -> rows.(i).(off)
  | Some m -> fun i -> rows.(m.(i)).(off)

(* Resolve a column reference and check it lands in table [t]. *)
let resolve_in ctx t (c : Ast.col_ref) =
  match Compiled.resolve_opt ctx.headers c with
  | Some ci when ctx.col_tbl.(ci) = t -> ci
  | _ -> fallback ()

let value_of_lit : Ast.lit -> Value.t = function
  | Ast.Null -> Value.Null
  | Ast.Bool b -> Value.Bool b
  | Ast.Int i -> Value.Int i
  | Ast.Float f -> Value.Float f
  | Ast.String s -> Value.String s

(* --- filter kernels --------------------------------------------------------- *)

(* A compiled per-table predicate over physical row indices. Typed kernels
   are total (no errors, Bool/Null results only); generic ones evaluate a
   compiled closure over a scratch row and surface the raw value so the
   caller can replicate 3-valued AND semantics. *)
type pred = P_typed of (int -> bool) | P_generic of (int -> Value.t)

let test_op (op : Ast.binop) (c : int) =
  match op with
  | Ast.Eq -> c = 0
  | Ast.Neq -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0
  | _ -> assert false

let flip_op : Ast.binop -> Ast.binop = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op

let not_null_fn (col : Chunk.col) : int -> bool =
  match col.Chunk.data with
  | Chunk.Strings s -> fun p -> s.Chunk.codes.(p) >= 0
  | _ -> (
      match col.Chunk.nulls with
      | None -> fun _ -> true
      | Some m -> fun p -> not m.(p))

(* Value.compare's rank for every value a typed column can hold. *)
let col_rank (d : Chunk.data) =
  match d with Chunk.Ints _ | Chunk.Floats _ -> 2 | Chunk.Strings _ -> 3 | Chunk.Boxed -> 0

let lit_rank : Value.t -> int = function
  | Value.Null -> 0
  | Value.Bool _ -> 1
  | Value.Int _ | Value.Float _ -> 2
  | Value.String _ -> 3

(* column-vs-literal comparison: SQL 3-valued — NULL operand drops the row *)
let col_vs_lit (col : Chunk.col) op (lit : Value.t) : pred option =
  let nn = not_null_fn col in
  let const_rank () =
    (* ranks differ for every non-NULL cell, so the comparison is constant *)
    if Value.is_null lit then Some (P_typed (fun _ -> false))
    else begin
      let c = compare (col_rank col.Chunk.data) (lit_rank lit) in
      if test_op op c then Some (P_typed nn) else Some (P_typed (fun _ -> false))
    end
  in
  match (col.Chunk.data, lit) with
  | Chunk.Boxed, _ -> None
  | Chunk.Ints a, Value.Int k -> Some (P_typed (fun p -> nn p && test_op op (compare a.(p) k)))
  | Chunk.Ints a, Value.Float f ->
      Some (P_typed (fun p -> nn p && test_op op (compare (float_of_int a.(p)) f)))
  | Chunk.Floats a, Value.Int k ->
      let f = float_of_int k in
      Some (P_typed (fun p -> nn p && test_op op (compare (a.(p) : float) f)))
  | Chunk.Floats a, Value.Float f ->
      Some (P_typed (fun p -> nn p && test_op op (compare (a.(p) : float) f)))
  | Chunk.Strings s, Value.String v -> (
      match op with
      | Ast.Eq -> (
          match Chunk.dict_code s v with
          | Some c -> Some (P_typed (fun p -> s.Chunk.codes.(p) = c))
          | None -> Some (P_typed (fun _ -> false)))
      | Ast.Neq -> (
          match Chunk.dict_code s v with
          | Some c ->
              Some
                (P_typed
                   (fun p ->
                     let x = s.Chunk.codes.(p) in
                     x >= 0 && x <> c))
          | None -> Some (P_typed (fun p -> s.Chunk.codes.(p) >= 0)))
      | _ ->
          Some
            (P_typed
               (fun p ->
                 s.Chunk.codes.(p) >= 0 && test_op op (compare (s.Chunk.vals.(p) : string) v)))
      )
  | (Chunk.Ints _ | Chunk.Floats _ | Chunk.Strings _), _ -> const_rank ()

let col_vs_col (ca : Chunk.col) op (cb : Chunk.col) : pred option =
  let nna = not_null_fn ca and nnb = not_null_fn cb in
  match (ca.Chunk.data, cb.Chunk.data) with
  | Chunk.Boxed, _ | _, Chunk.Boxed -> None
  | Chunk.Ints a, Chunk.Ints b ->
      Some (P_typed (fun p -> nna p && nnb p && test_op op (compare a.(p) b.(p))))
  | Chunk.Floats a, Chunk.Floats b ->
      Some (P_typed (fun p -> nna p && nnb p && test_op op (compare (a.(p) : float) b.(p))))
  | Chunk.Ints a, Chunk.Floats b ->
      Some
        (P_typed (fun p -> nna p && nnb p && test_op op (compare (float_of_int a.(p)) b.(p))))
  | Chunk.Floats a, Chunk.Ints b ->
      Some
        (P_typed
           (fun p -> nna p && nnb p && test_op op (compare (a.(p) : float) (float_of_int b.(p)))))
  | Chunk.Strings a, Chunk.Strings b ->
      Some
        (P_typed
           (fun p ->
             a.Chunk.codes.(p) >= 0
             && b.Chunk.codes.(p) >= 0
             && test_op op (compare (a.Chunk.vals.(p) : string) b.Chunk.vals.(p))))
  | da, db ->
      (* distinct typed ranks: constant comparison wherever both non-NULL *)
      let c = compare (col_rank da) (col_rank db) in
      if test_op op c then Some (P_typed (fun p -> nna p && nnb p))
      else Some (P_typed (fun _ -> false))

(* Never-called subquery hook: recognition already rejected subqueries. *)
let no_subquery_fn : Compiled.subquery = fun _ _ -> fallback ()

(* Compile one conjunct into a per-physical-row predicate for table [t]. *)
let compile_pred ctx t (e : Ast.expr) : pred =
  let chunk = ctx.chunks.(t) in
  let col_of c = chunk.Chunk.cols.(ctx.col_off.(resolve_in ctx t c)) in
  let typed =
    match e with
    | Ast.Binop (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) -> (
        match (a, b) with
        | Ast.Col c, Ast.Lit l -> col_vs_lit (col_of c) op (value_of_lit l)
        | Ast.Lit l, Ast.Col c -> col_vs_lit (col_of c) (flip_op op) (value_of_lit l)
        | Ast.Col c1, Ast.Col c2 -> col_vs_col (col_of c1) op (col_of c2)
        | _ -> None)
    | Ast.Is_null { subject = Ast.Col c; negated } ->
        let ci = resolve_in ctx t c in
        let col = chunk.Chunk.cols.(ctx.col_off.(ci)) in
        let isnull =
          match col.Chunk.data with
          | Chunk.Strings s -> fun p -> s.Chunk.codes.(p) < 0
          | Chunk.Boxed ->
              let rows = chunk.Chunk.rows and off = ctx.col_off.(ci) in
              fun p -> Value.is_null rows.(p).(off)
          | _ -> (
              match col.Chunk.nulls with
              | None -> fun _ -> false
              | Some m -> fun p -> m.(p))
        in
        Some (P_typed (if negated then fun p -> not (isnull p) else isnull))
    | _ -> None
  in
  match typed with
  | Some p -> p
  | None ->
      (* generic: compile against the combined headers, evaluate over a
         scratch row filled with just this conjunct's columns *)
      let needed =
        List.map
          (fun c ->
            let ci = resolve_in ctx t c in
            (ci, ctx.col_off.(ci)))
          (Ast.expr_columns e)
      in
      let closure =
        Compiled.compile ~subquery:no_subquery_fn ~headers:ctx.headers ~outer:[] e
      in
      let scratch = Array.make (Array.length ctx.headers) Value.Null in
      let rows = chunk.Chunk.rows in
      P_generic
        (fun p ->
          List.iter (fun (ci, off) -> scratch.(ci) <- rows.(p).(off)) needed;
          closure scratch)

(* Apply one predicate group to the surviving physical rows of a table.
   Within a group every generic conjunct is evaluated on every input row —
   the row engine's AND evaluates all operands before combining, so its
   error/3-valued behaviour depends on all of them — while typed conjuncts
   (total, error-free) may short-circuit each other. All-typed groups run
   morsel-parallel over chunk ranges (order-preserving concat); generic
   conjuncts share a compiled scratch row and stay sequential. *)
let apply_group pool (chunk : Chunk.t) (sel : int array option) (conjs : Ast.expr list)
    ~strict ~(compile : Ast.expr -> pred) : int array option =
  let preds = List.map compile conjs in
  let typed = List.filter_map (function P_typed f -> Some f | _ -> None) preds in
  let gens = List.filter_map (function P_generic g -> Some g | _ -> None) preds in
  let keep p =
    let ok = ref (List.for_all (fun f -> f p) typed) in
    List.iter
      (fun g ->
        match g p with
        | Value.Bool true -> ()
        | Value.Bool false | Value.Null -> ok := false
        | _ ->
            (* the row engine's AND raises on non-boolean operands; a lone
               conjunct just falls to is_truthy = false *)
            if strict then fallback () else ok := false)
      gens;
    !ok
  in
  let pool = if gens = [] then pool else None in
  let nin = match sel with None -> chunk.Chunk.n | Some s -> Array.length s in
  let at = match sel with None -> fun i -> i | Some s -> fun i -> s.(i) in
  let chunkf lo hi =
    let out = Vec.create () in
    for i = lo to hi - 1 do
      let p = at i in
      if keep p then Vec.push out p
    done;
    out
  in
  let out =
    match Parallel.gather pool nin chunkf with
    | None -> chunkf 0 nin
    | Some parts -> Vec.concat parts
  in
  Some (Vec.to_array out)

let selection_of ctx t (s : step) : int array option =
  let compile = compile_pred ctx t in
  List.fold_left
    (fun sel (conjs, strict) ->
      apply_group ctx.pool ctx.chunks.(t) sel conjs ~strict ~compile)
    None s.s_groups

(* --- hash equijoin ---------------------------------------------------------- *)

let small_int v = v > -two_53 && v < two_53

(* Join the accumulated slab (probe side, logical row order preserved) with
   table [bt]'s filtered rows (build side) on [probe_ci = build col]. The
   candidate order per key is the build side's ascending row order and the
   output follows the probe scan — exactly the row engine's hash join. *)
let join_step ctx (slab : slab) ~bt ~probe_ci ~build_off (bsel : int array option) : slab =
  let bchunk = ctx.chunks.(bt) in
  let bcol = bchunk.Chunk.cols.(build_off) in
  let nb = match bsel with None -> bchunk.Chunk.n | Some s -> Array.length s in
  let iter_build f =
    match bsel with
    | None ->
        for p = 0 to bchunk.Chunk.n - 1 do
          f p
        done
    | Some s -> Array.iter f s
  in
  let pt = ctx.col_tbl.(probe_ci) in
  let pcol = ctx.chunks.(pt).Chunk.cols.(ctx.col_off.(probe_ci)) in
  let pphys = phys_of slab pt in
  let pnn = not_null_fn pcol in
  let pfetch = fetcher ctx slab probe_ci in
  let pmap = map_of slab pt in
  (* probe-side key extraction mirroring Row_table.int_key_of *)
  let probe_int : (int -> int option) Lazy.t =
    lazy
      (match pcol.Chunk.data with
      | Chunk.Ints a ->
          fun i ->
            let p = pphys i in
            if pnn p && small_int a.(p) then Some a.(p) else None
      | Chunk.Floats _ | Chunk.Boxed ->
          fun i ->
            let v = pfetch i in
            if Value.is_null v then None else Row_table.int_key_of v
      | Chunk.Strings _ -> fun _ -> None)
  in
  let probe_str : (int -> string option) Lazy.t =
    lazy
      (match pcol.Chunk.data with
      | Chunk.Strings s ->
          fun i ->
            let p = pphys i in
            if s.Chunk.codes.(p) >= 0 then Some s.Chunk.vals.(p) else None
      | Chunk.Boxed -> (
          fun i -> match pfetch i with Value.String s -> Some s | _ -> None)
      | _ -> fun _ -> None)
  in
  let np = slab.n in
  (* Generic emit: probe rows in logical order, candidates per probe row in
     build row order, through a per-strategy candidate iterator. One closure
     for the whole loop, not one per probe row. *)
  let emit_generic (cand : int -> (int -> unit) -> unit) : int array * int array =
    let chunkf lo hi =
      let op = Vec.create () and ob = Vec.create () in
      let cur = ref 0 in
      let push p =
        Vec.push op !cur;
        Vec.push ob p
      in
      for i = lo to hi - 1 do
        cur := i;
        cand i push
      done;
      (Vec.to_array op, Vec.to_array ob)
    in
    match Parallel.gather ctx.pool np chunkf with
    | None -> chunkf 0 np
    | Some parts ->
        ( Array.concat (List.map fst (Array.to_list parts)),
          Array.concat (List.map snd (Array.to_list parts)) )
  in
  (* Strategy selection replicates the row join: dense counting-sort for
     small-int keys in a modest range, then an unboxed int-keyed table, a
     string table (scalar-keyed in the row engine, but only strings can
     match a string column), or the boxed scalar table. *)
  let opa, oba =
    match bcol.Chunk.data with
    | Chunk.Ints a -> (
        (* valid (key, physical row) pairs in build row order; monomorphic.
           An unselected null-free column is its own key array ([kphys] =
           identity, no copies at all). *)
        let keys, kphys, nk =
          match (bsel, bcol.Chunk.nulls) with
          | None, None -> (a, None, bchunk.Chunk.n)
          | None, Some mask ->
              let keys = Array.make (max nb 1) 0 and kp = Array.make (max nb 1) 0 in
              let nk = ref 0 in
              for p = 0 to bchunk.Chunk.n - 1 do
                if not mask.(p) then begin
                  keys.(!nk) <- a.(p);
                  kp.(!nk) <- p;
                  incr nk
                end
              done;
              (keys, Some kp, !nk)
          | Some s, None ->
              let keys = Array.make (max nb 1) 0 and kp = Array.make (max nb 1) 0 in
              for q = 0 to Array.length s - 1 do
                let p = s.(q) in
                keys.(q) <- a.(p);
                kp.(q) <- p
              done;
              (keys, Some kp, Array.length s)
          | Some s, Some mask ->
              let keys = Array.make (max nb 1) 0 and kp = Array.make (max nb 1) 0 in
              let nk = ref 0 in
              for q = 0 to Array.length s - 1 do
                let p = s.(q) in
                if not mask.(p) then begin
                  keys.(!nk) <- a.(p);
                  kp.(!nk) <- p;
                  incr nk
                end
              done;
              (keys, Some kp, !nk)
        in
        let all_small = ref true in
        let lo = ref max_int and hi = ref min_int in
        for q = 0 to nk - 1 do
          let v = keys.(q) in
          if not (small_int v) then all_small := false;
          if v < !lo then lo := v;
          if v > !hi then hi := v
        done;
        if not !all_small then begin
          (* the row engine would use the boxed scalar table *)
          let tbl : int Vec.t Row_table.Scalar.t = Row_table.Scalar.create (max 16 nb) in
          for q = 0 to nk - 1 do
            let v = Value.Int keys.(q) in
            let p = match kphys with None -> q | Some kp -> kp.(q) in
            match Row_table.Scalar.find_opt tbl v with
            | Some cell -> Vec.push cell p
            | None ->
                let cell = Vec.create () in
                Vec.push cell p;
                Row_table.Scalar.replace tbl v cell
          done;
          emit_generic (fun i f ->
              let v = pfetch i in
              if not (Value.is_null v) then
                match Row_table.Scalar.find_opt tbl v with
                | None -> ()
                | Some cell -> Vec.iter f cell)
        end
        else begin
          let lo = !lo and hi = !hi in
          let range = if nk = 0 then 0 else hi - lo + 1 in
          if range > 0 && range <= max 1024 (8 * nb) then begin
            (* dense id keys: counting-sort buckets, no hashing at all *)
            (* counting sort without a separate cursor array: count into
               [starts], inclusive prefix sum (so [starts.(b)] = bucket end),
               then fill in descending [q] with [starts.(b)] as a falling
               cursor. Descending order into falling positions keeps
               build-row order inside each bucket, and the cursor comes to
               rest at the bucket start, restoring the usual
               [starts.(b) .. starts.(b+1)-1] layout for the probe. *)
            let starts = Array.make (range + 1) 0 in
            for q = 0 to nk - 1 do
              let b = keys.(q) - lo in
              starts.(b) <- starts.(b) + 1
            done;
            for i = 1 to range - 1 do
              starts.(i) <- starts.(i) + starts.(i - 1)
            done;
            starts.(range) <- nk;
            let items = Array.make (max nk 1) 0 in
            (match kphys with
            | None ->
                for q = nk - 1 downto 0 do
                  let b = keys.(q) - lo in
                  let pos = starts.(b) - 1 in
                  starts.(b) <- pos;
                  items.(pos) <- q
                done
            | Some kp ->
                for q = nk - 1 downto 0 do
                  let b = keys.(q) - lo in
                  let pos = starts.(b) - 1 in
                  starts.(b) <- pos;
                  items.(pos) <- kp.(q)
                done);
            match pcol.Chunk.data with
            | Chunk.Ints pa ->
                (* fused dense probe: count pass then exact-size fill pass.
                   [lo..hi] are small ints, so any probe key inside the
                   range passes Row_table's small-int guard for free. *)
                let pmask = pcol.Chunk.nulls in
                let chunkf plo phi =
                  let total = ref 0 in
                  (match (pmap, pmask) with
                  | None, None ->
                      for i = plo to phi - 1 do
                        let k = pa.(i) in
                        if k >= lo && k <= hi then
                          total := !total + starts.(k - lo + 1) - starts.(k - lo)
                      done
                  | None, Some mask ->
                      for i = plo to phi - 1 do
                        if not mask.(i) then begin
                          let k = pa.(i) in
                          if k >= lo && k <= hi then
                            total := !total + starts.(k - lo + 1) - starts.(k - lo)
                        end
                      done
                  | Some m, None ->
                      for i = plo to phi - 1 do
                        let k = pa.(m.(i)) in
                        if k >= lo && k <= hi then
                          total := !total + starts.(k - lo + 1) - starts.(k - lo)
                      done
                  | Some m, Some mask ->
                      for i = plo to phi - 1 do
                        let p = m.(i) in
                        if not mask.(p) then begin
                          let k = pa.(p) in
                          if k >= lo && k <= hi then
                            total := !total + starts.(k - lo + 1) - starts.(k - lo)
                        end
                      done);
                  let op = Array.make !total 0 and ob = Array.make !total 0 in
                  let w = ref 0 in
                  (match (pmap, pmask) with
                  | None, None ->
                      for i = plo to phi - 1 do
                        let k = pa.(i) in
                        if k >= lo && k <= hi then
                          for q = starts.(k - lo) to starts.(k - lo + 1) - 1 do
                            op.(!w) <- i;
                            ob.(!w) <- items.(q);
                            incr w
                          done
                      done
                  | None, Some mask ->
                      for i = plo to phi - 1 do
                        if not mask.(i) then begin
                          let k = pa.(i) in
                          if k >= lo && k <= hi then
                            for q = starts.(k - lo) to starts.(k - lo + 1) - 1 do
                              op.(!w) <- i;
                              ob.(!w) <- items.(q);
                              incr w
                            done
                        end
                      done
                  | Some m, None ->
                      for i = plo to phi - 1 do
                        let k = pa.(m.(i)) in
                        if k >= lo && k <= hi then
                          for q = starts.(k - lo) to starts.(k - lo + 1) - 1 do
                            op.(!w) <- i;
                            ob.(!w) <- items.(q);
                            incr w
                          done
                      done
                  | Some m, Some mask ->
                      for i = plo to phi - 1 do
                        let p = m.(i) in
                        if not mask.(p) then begin
                          let k = pa.(p) in
                          if k >= lo && k <= hi then
                            for q = starts.(k - lo) to starts.(k - lo + 1) - 1 do
                              op.(!w) <- i;
                              ob.(!w) <- items.(q);
                              incr w
                            done
                        end
                      done);
                  (op, ob)
                in
                (match Parallel.gather ctx.pool np chunkf with
                | None -> chunkf 0 np
                | Some parts ->
                    ( Array.concat (List.map fst (Array.to_list parts)),
                      Array.concat (List.map snd (Array.to_list parts)) ))
            | _ ->
                let probe_int = Lazy.force probe_int in
                emit_generic (fun i f ->
                    match probe_int i with
                    | Some k when k >= lo && k <= hi ->
                        for q = starts.(k - lo) to starts.(k - lo + 1) - 1 do
                          f items.(q)
                        done
                    | _ -> ())
          end
          else begin
            let tbl : int Vec.t Row_table.Int_key.t =
              Row_table.Int_key.create (max 16 nb)
            in
            for q = 0 to nk - 1 do
              let k = keys.(q) in
              let p = match kphys with None -> q | Some kp -> kp.(q) in
              match Row_table.Int_key.find_opt tbl k with
              | Some cell -> Vec.push cell p
              | None ->
                  let cell = Vec.create () in
                  Vec.push cell p;
                  Row_table.Int_key.replace tbl k cell
            done;
            let probe_int = Lazy.force probe_int in
            emit_generic (fun i f ->
                match probe_int i with
                | None -> ()
                | Some k -> (
                    match Row_table.Int_key.find_opt tbl k with
                    | None -> ()
                    | Some cell -> Vec.iter f cell))
          end
        end)
    | Chunk.Strings s ->
        let tbl : (string, int Vec.t) Hashtbl.t = Hashtbl.create (max 16 nb) in
        iter_build (fun p ->
            if s.Chunk.codes.(p) >= 0 then begin
              let v = s.Chunk.vals.(p) in
              match Hashtbl.find_opt tbl v with
              | Some cell -> Vec.push cell p
              | None ->
                  let cell = Vec.create () in
                  Vec.push cell p;
                  Hashtbl.replace tbl v cell
            end);
        let probe_str = Lazy.force probe_str in
        emit_generic (fun i f ->
            match probe_str i with
            | None -> ()
            | Some v -> (
                match Hashtbl.find_opt tbl v with
                | None -> ()
                | Some cell -> Vec.iter f cell))
    | Chunk.Floats _ | Chunk.Boxed ->
        let rows = bchunk.Chunk.rows in
        let tbl : int Vec.t Row_table.Scalar.t = Row_table.Scalar.create (max 16 nb) in
        iter_build (fun p ->
            let v = rows.(p).(build_off) in
            if not (Value.is_null v) then
              match Row_table.Scalar.find_opt tbl v with
              | Some cell -> Vec.push cell p
              | None ->
                  let cell = Vec.create () in
                  Vec.push cell p;
                  Row_table.Scalar.replace tbl v cell);
        emit_generic (fun i f ->
            let v = pfetch i in
            if not (Value.is_null v) then
              match Row_table.Scalar.find_opt tbl v with
              | None -> ()
              | Some cell -> Vec.iter f cell)
  in
  let n_out = Array.length opa in
  let maps = Array.make (Array.length ctx.chunks) (Lazy.from_val None) in
  for t = 0 to bt - 1 do
    maps.(t) <-
      lazy
        (Some
           (match map_of slab t with
           | None -> opa
           | Some m ->
               let r = Array.make n_out 0 in
               for i = 0 to n_out - 1 do
                 r.(i) <- m.(Array.unsafe_get opa i)
               done;
               r))
  done;
  maps.(bt) <- Lazy.from_val (Some oba);
  { n = n_out; maps }

(* --- filter + join pipeline ------------------------------------------------- *)

(* Attach predicates to their tables as groups. [prefix] limits resolution
   to the first [prefix] tables (plan Filters above a join subtree compile
   against that prefix relation in the row engine). *)
let attach ctx (steps : step array) ?prefix (e : Ast.expr) =
  let headers =
    match prefix with
    | None -> ctx.headers
    | Some p ->
        let stop =
          if p >= Array.length steps then Array.length ctx.headers else ctx.tbl_start.(p)
        in
        Array.sub ctx.headers 0 stop
  in
  let conjs = Ast.conjuncts e in
  let strict = List.length conjs > 1 in
  let by_table = Array.make (Array.length steps) [] in
  List.iter
    (fun c ->
      plain_expr c;
      let tids =
        List.map
          (fun cr ->
            match Compiled.resolve_opt headers cr with
            | Some ci -> ctx.col_tbl.(ci)
            | None -> fallback ())
          (Ast.expr_columns c)
      in
      let t =
        match List.sort_uniq compare tids with
        | [] -> 0
        | [ t ] -> t
        | _ -> fallback () (* cross-table conjunct: row path only *)
      in
      by_table.(t) <- c :: by_table.(t))
    conjs;
  Array.iteri
    (fun t cs ->
      if cs <> [] then steps.(t).s_groups <- steps.(t).s_groups @ [ (List.rev cs, strict) ])
    by_table

(* Resolve each step's ON condition to a single (prefix col, build col)
   equality, replicating the row engine's split_join_condition orientation
   (left-hand resolution against the prefix tried first). *)
let join_keys ctx (steps : step array) =
  Array.mapi
    (fun t (s : step) ->
      if t = 0 then begin
        (match s.s_cond with Some _ -> fallback () | None -> ());
        None
      end
      else begin
        let e = match s.s_cond with Some e -> e | None -> fallback () in
        let prefix = Array.sub ctx.headers 0 ctx.tbl_start.(t) in
        let width =
          (if t + 1 < Array.length steps then ctx.tbl_start.(t + 1)
           else Array.length ctx.headers)
          - ctx.tbl_start.(t)
        in
        let mine = Array.sub ctx.headers ctx.tbl_start.(t) width in
        match Ast.conjuncts e with
        | [ Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) ] -> (
            match (Compiled.resolve_opt prefix a, Compiled.resolve_opt mine b) with
            | Some li, Some ri -> Some (li, ri)
            | _ -> (
                match (Compiled.resolve_opt prefix b, Compiled.resolve_opt mine a) with
                | Some li, Some ri -> Some (li, ri)
                | _ -> fallback ()))
        | _ -> fallback ()
      end)
    steps

let build_slab ctx (steps : step array) : slab =
  let sels = Array.mapi (fun t s -> selection_of ctx t s) steps in
  let keys = join_keys ctx steps in
  let slab = ref { n = (match sels.(0) with None -> ctx.chunks.(0).Chunk.n | Some s -> Array.length s); maps = Array.make (Array.length steps) (Lazy.from_val None) } in
  (!slab).maps.(0) <- Lazy.from_val sels.(0);
  for t = 1 to Array.length steps - 1 do
    match keys.(t) with
    | None -> fallback ()
    | Some (li, ri) ->
        slab := join_step ctx !slab ~bt:t ~probe_ci:li ~build_off:(ri + 0) sels.(t)
  done;
  !slab

(* --- projection / aggregation tails ------------------------------------------ *)

(* Expanded projections must all be plain column references for the
   column-fetch materialiser; anything else falls back to the row path. *)
let projection_cols ctx (projections : (Ast.expr * string) list) : int array =
  Array.of_list
    (List.map
       (fun (e, _) ->
         match e with
         | Ast.Col c -> (
             plain_expr e;
             match Compiled.resolve_opt ctx.headers c with
             | Some ci -> ci
             | None -> fallback ())
         | _ -> fallback ())
       projections)

(* Materialise output rows for the given logical rows (identity when
   [order] is [None]), replicating the row engine's fresh-array projection.
   When the projection is the identity over a single table, output rows
   share the table's row arrays (structurally identical, zero copying). *)
let materialize ctx (slab : slab) (proj : int array) ~(order : int array option) ~start
    ~take : Value.t array Vec.t =
  let w = Array.length proj in
  let identity =
    Array.length ctx.chunks = 1
    && w = Array.length ctx.headers
    && Array.for_all2 (fun a b -> a = b) proj (Array.init w (fun i -> i))
  in
  if identity then begin
    let rows = ctx.chunks.(0).Chunk.rows in
    let make : int -> Value.t array =
      match (order, map_of slab 0) with
      | None, None -> fun k -> rows.(start + k)
      | None, Some m -> fun k -> rows.(m.(start + k))
      | Some o, None -> fun k -> rows.(o.(start + k))
      | Some o, Some m -> fun k -> rows.(m.(o.(start + k)))
    in
    match
      Parallel.gather ctx.pool take (fun lo hi ->
          Array.init (hi - lo) (fun k -> make (lo + k)))
    with
    | None -> Vec.wrap (Array.init take make)
    | Some parts -> Vec.of_arrays parts
  end
  else begin
    (* Wide projections (the equijoin SELECT-* shape) materialise
       column-at-a-time from the selection vectors: gather each source
       table's physical row indices for the output window once, then fill
       each output column with a tight loop over the chunk's typed array.
       Ints/Floats box straight off the flat array (the same bits the row
       holds, and a sequential read instead of a pointer chase through
       scattered row arrays); Strings share one pre-boxed Value per
       dictionary entry, so repeated join keys allocate nothing; Boxed and
       mixed columns keep reading through the rows. Results are structurally
       identical to the row path — same values, same order. *)
    let boxed_dicts : (int * int, Value.t array) Hashtbl.t = Hashtbl.create 4 in
    Array.iter
      (fun ci ->
        let t = ctx.col_tbl.(ci) and off = ctx.col_off.(ci) in
        if not (Hashtbl.mem boxed_dicts (t, off)) then
          match (ctx.chunks.(t).Chunk.cols.(off)).Chunk.data with
          | Chunk.Strings s ->
              (* boxed on the coordinating thread, before any worker reads *)
              Hashtbl.add boxed_dicts (t, off)
                (Array.map (fun v -> Value.String v) s.Chunk.dict)
          | _ -> ())
      proj;
    let fill_cols phys_of lo hi =
      let cnt = hi - lo in
      let out = Array.init cnt (fun _ -> Array.make w Value.Null) in
      let pi_cache : (int, int array) Hashtbl.t = Hashtbl.create 4 in
      let phys_idx t =
        match Hashtbl.find_opt pi_cache t with
        | Some pi -> pi
        | None ->
            let pi : int array = phys_of t lo hi in
            Hashtbl.add pi_cache t pi;
            pi
      in
      for j = 0 to w - 1 do
        let ci = proj.(j) in
        let t = ctx.col_tbl.(ci) and off = ctx.col_off.(ci) in
        let pi = phys_idx t in
        let chunk = ctx.chunks.(t) in
        let col = chunk.Chunk.cols.(off) in
        match (col.Chunk.data, col.Chunk.nulls) with
        | Chunk.Ints a, None ->
            for k = 0 to cnt - 1 do
              out.(k).(j) <- Value.Int a.(pi.(k))
            done
        | Chunk.Ints a, Some nu ->
            for k = 0 to cnt - 1 do
              let i = pi.(k) in
              out.(k).(j) <- (if nu.(i) then Value.Null else Value.Int a.(i))
            done
        | Chunk.Floats a, None ->
            for k = 0 to cnt - 1 do
              out.(k).(j) <- Value.Float a.(pi.(k))
            done
        | Chunk.Floats a, Some nu ->
            for k = 0 to cnt - 1 do
              let i = pi.(k) in
              out.(k).(j) <- (if nu.(i) then Value.Null else Value.Float a.(i))
            done
        | Chunk.Strings s, _ ->
            (* codes carry NULL as -1, so the nulls mask is already folded in *)
            let boxed = Hashtbl.find boxed_dicts (t, off) in
            for k = 0 to cnt - 1 do
              let c = s.Chunk.codes.(pi.(k)) in
              out.(k).(j) <- (if c < 0 then Value.Null else boxed.(c))
            done
        | Chunk.Boxed, _ ->
            let rows = chunk.Chunk.rows in
            for k = 0 to cnt - 1 do
              out.(k).(j) <- rows.(pi.(k)).(off)
            done
      done;
      out
    in
    let phys_direct t lo hi =
      match map_of slab t with
      | None -> Array.init (hi - lo) (fun k -> start + lo + k)
      | Some m -> Array.init (hi - lo) (fun k -> m.(start + lo + k))
    in
    let phys_ordered o t lo hi =
      match map_of slab t with
      | None -> Array.init (hi - lo) (fun k -> o.(start + lo + k))
      | Some m -> Array.init (hi - lo) (fun k -> m.(o.(start + lo + k)))
    in
    (* No ORDER BY: read output rows straight through the lazy maps — no
       per-window gather arrays, just one bounds-free int indirection per
       cell. The per-column [match] on the map is a predictable branch. *)
    let chunkf_direct lo hi =
      let cnt = hi - lo in
      let src j =
        let t = ctx.col_tbl.(proj.(j)) in
        (ctx.chunks.(t).Chunk.rows, map_of slab t, ctx.col_off.(proj.(j)))
      in
      match proj with
      | [| _ |] ->
          let rows0, m0, o0 = src 0 in
          Array.init cnt (fun k ->
              let i = start + lo + k in
              [| (match m0 with None -> rows0.(i) | Some m -> rows0.(m.(i))).(o0) |])
      | [| _; _ |] ->
          let rows0, m0, o0 = src 0 and rows1, m1, o1 = src 1 in
          Array.init cnt (fun k ->
              let i = start + lo + k in
              [|
                (match m0 with None -> rows0.(i) | Some m -> rows0.(m.(i))).(o0);
                (match m1 with None -> rows1.(i) | Some m -> rows1.(m.(i))).(o1);
              |])
      | [| _; _; _ |] ->
          let rows0, m0, o0 = src 0 and rows1, m1, o1 = src 1 in
          let rows2, m2, o2 = src 2 in
          Array.init cnt (fun k ->
              let i = start + lo + k in
              [|
                (match m0 with None -> rows0.(i) | Some m -> rows0.(m.(i))).(o0);
                (match m1 with None -> rows1.(i) | Some m -> rows1.(m.(i))).(o1);
                (match m2 with None -> rows2.(i) | Some m -> rows2.(m.(i))).(o2);
              |])
      | _ -> fill_cols phys_direct lo hi
    in
    (* ORDER BY: gather each source table's row pointers for the output
       window first (monomorphic loops over the order/map variants), then
       build output rows from those pointers. *)
    let chunkf_ordered o lo hi =
      let cnt = hi - lo in
      let rp_cache : (int, Value.t array array) Hashtbl.t = Hashtbl.create 4 in
      let row_ptrs t : Value.t array array =
        match Hashtbl.find_opt rp_cache t with
        | Some rp -> rp
        | None ->
            let rows = ctx.chunks.(t).Chunk.rows in
            let rp =
              match map_of slab t with
              | None -> Array.init cnt (fun k -> rows.(o.(start + lo + k)))
              | Some m -> Array.init cnt (fun k -> rows.(m.(o.(start + lo + k))))
            in
            Hashtbl.add rp_cache t rp;
            rp
      in
      match proj with
      | [| c0 |] ->
          let rp0 = row_ptrs ctx.col_tbl.(c0) and o0 = ctx.col_off.(c0) in
          Array.init cnt (fun k -> [| rp0.(k).(o0) |])
      | [| c0; c1 |] ->
          let rp0 = row_ptrs ctx.col_tbl.(c0) and o0 = ctx.col_off.(c0) in
          let rp1 = row_ptrs ctx.col_tbl.(c1) and o1 = ctx.col_off.(c1) in
          Array.init cnt (fun k -> [| rp0.(k).(o0); rp1.(k).(o1) |])
      | [| c0; c1; c2 |] ->
          let rp0 = row_ptrs ctx.col_tbl.(c0) and o0 = ctx.col_off.(c0) in
          let rp1 = row_ptrs ctx.col_tbl.(c1) and o1 = ctx.col_off.(c1) in
          let rp2 = row_ptrs ctx.col_tbl.(c2) and o2 = ctx.col_off.(c2) in
          Array.init cnt (fun k -> [| rp0.(k).(o0); rp1.(k).(o1); rp2.(k).(o2) |])
      | _ -> fill_cols (phys_ordered o) lo hi
    in
    let chunkf =
      match order with None -> chunkf_direct | Some o -> chunkf_ordered o
    in
    (* force lazy maps on this thread before workers read them *)
    Array.iter (fun ci -> ignore (map_of slab ctx.col_tbl.(ci))) proj;
    match Parallel.gather ctx.pool take chunkf with
    | None -> Vec.wrap (chunkf 0 take)
    | Some parts -> Vec.of_arrays parts
  end

(* --- GROUP BY --------------------------------------------------------------- *)

(* First-appearance group ids over the slab's logical rows. Dense integer /
   dictionary codes avoid hashing; otherwise grouping goes through the same
   Value-keyed tables as the row engine (same equality, same order). *)
let group_ids ctx (slab : slab) (kcis : int list) ~want_rows =
  let n = slab.n in
  let gids = Array.make n 0 in
  let first = Vec.create () in
  let grows : int Vec.t Vec.t = Vec.create () in
  let enter code_tbl i code =
    match code_tbl code with
    | Some g ->
        gids.(i) <- g;
        if want_rows then Vec.push (Vec.unsafe_get grows g) i
    | None ->
        let g = Vec.length first in
        gids.(i) <- g;
        Vec.push first i;
        if want_rows then begin
          let cell = Vec.create () in
          Vec.push cell i;
          Vec.push grows cell
        end
  in
  (* try dense codes: every key column as ints in [0, range), NULL = 0 *)
  let dense_code ci =
    let t = ctx.col_tbl.(ci) in
    let col = ctx.chunks.(t).Chunk.cols.(ctx.col_off.(ci)) in
    let phys = phys_of slab t in
    match col.Chunk.data with
    | Chunk.Strings s ->
        Some ((fun i -> s.Chunk.codes.(phys i) + 1), Array.length s.Chunk.dict + 1)
    | Chunk.Ints a ->
        let nn = not_null_fn col in
        let lo = ref max_int and hi = ref min_int and seen = ref false in
        for i = 0 to n - 1 do
          let p = phys i in
          if nn p then begin
            seen := true;
            if a.(p) < !lo then lo := a.(p);
            if a.(p) > !hi then hi := a.(p)
          end
        done;
        if not !seen then Some ((fun _ -> 0), 1)
        else begin
          let lo = !lo in
          let range = !hi - lo + 2 in
          if range <= max 65536 ((4 * n) + 1) then
            Some
              ( (fun i ->
                  let p = phys i in
                  if nn p then a.(p) - lo + 1 else 0),
                range )
          else None
        end
    | _ -> None
  in
  let dense = lazy (
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | ci :: rest -> ( match dense_code ci with Some c -> go (c :: acc) rest | None -> None)
    in
    match go [] kcis with
    | None -> None
    | Some codes ->
        let total = List.fold_left (fun acc (_, r) -> acc * r) 1 codes in
        if total > 0 && total <= 1 lsl 21 then Some (codes, total) else None)
  in
  (* single dense key: monomorphic loops over the raw code arrays, no
     per-row closures or option boxing. [register] is only called once per
     distinct group, so the hot path is array reads and one branch. *)
  let single_dense =
    match kcis with
    | [ ci ] -> (
        let t = ctx.col_tbl.(ci) in
        let col = ctx.chunks.(t).Chunk.cols.(ctx.col_off.(ci)) in
        let m = map_of slab t in
        let scan_register (idx : int array) i c =
          let g = Vec.length first in
          idx.(c) <- g;
          gids.(i) <- g;
          Vec.push first i;
          if want_rows then begin
            let cell = Vec.create () in
            Vec.push cell i;
            Vec.push grows cell
          end
        in
        match col.Chunk.data with
        | Chunk.Strings str when Array.length str.Chunk.dict + 1 <= 1 lsl 21 ->
            let codes = str.Chunk.codes in
            let idx = Array.make (Array.length str.Chunk.dict + 1) (-1) in
            (match m with
            | None ->
                for i = 0 to n - 1 do
                  let c = codes.(i) + 1 in
                  let g = idx.(c) in
                  if g >= 0 then begin
                    gids.(i) <- g;
                    if want_rows then Vec.push (Vec.unsafe_get grows g) i
                  end
                  else scan_register idx i c
                done
            | Some m ->
                for i = 0 to n - 1 do
                  let c = codes.(m.(i)) + 1 in
                  let g = idx.(c) in
                  if g >= 0 then begin
                    gids.(i) <- g;
                    if want_rows then Vec.push (Vec.unsafe_get grows g) i
                  end
                  else scan_register idx i c
                done);
            true
        | Chunk.Ints a -> (
            let mask = match col.Chunk.nulls with None -> [||] | Some b -> b in
            (* min/max scan over live physical rows, nulls excluded *)
            let lo = ref max_int and hi = ref min_int and seen = ref false in
            (match m with
            | None ->
                if Array.length mask = 0 then begin
                  seen := n > 0;
                  for i = 0 to n - 1 do
                    if a.(i) < !lo then lo := a.(i);
                    if a.(i) > !hi then hi := a.(i)
                  done
                end
                else
                  for i = 0 to n - 1 do
                    if not mask.(i) then begin
                      seen := true;
                      if a.(i) < !lo then lo := a.(i);
                      if a.(i) > !hi then hi := a.(i)
                    end
                  done
            | Some m ->
                for i = 0 to n - 1 do
                  let p = m.(i) in
                  if Array.length mask = 0 || not mask.(p) then begin
                    seen := true;
                    if a.(p) < !lo then lo := a.(p);
                    if a.(p) > !hi then hi := a.(p)
                  end
                done);
            let lo, range = if !seen then (!lo, !hi - !lo + 2) else (0, 1) in
            if range <= max 65536 ((4 * n) + 1) && range <= 1 lsl 21 then begin
              let idx = Array.make range (-1) in
              (match m with
              | None ->
                  if Array.length mask = 0 then
                    for i = 0 to n - 1 do
                      let c = a.(i) - lo + 1 in
                      let g = idx.(c) in
                      if g >= 0 then begin
                        gids.(i) <- g;
                        if want_rows then Vec.push (Vec.unsafe_get grows g) i
                      end
                      else scan_register idx i c
                    done
                  else
                    for i = 0 to n - 1 do
                      let c = if mask.(i) then 0 else a.(i) - lo + 1 in
                      let g = idx.(c) in
                      if g >= 0 then begin
                        gids.(i) <- g;
                        if want_rows then Vec.push (Vec.unsafe_get grows g) i
                      end
                      else scan_register idx i c
                    done
              | Some m ->
                  for i = 0 to n - 1 do
                    let p = m.(i) in
                    let c =
                      if Array.length mask > 0 && mask.(p) then 0 else a.(p) - lo + 1
                    in
                    let g = idx.(c) in
                    if g >= 0 then begin
                      gids.(i) <- g;
                      if want_rows then Vec.push (Vec.unsafe_get grows g) i
                    end
                    else scan_register idx i c
                  done);
              true
            end
            else false)
        | _ -> false)
    | _ -> false
  in
  (if single_dense then ()
  else
  match Lazy.force dense with
  | Some (codes, total) ->
      let idx = Array.make total (-1) in
      let combined i =
        let c = ref 0 in
        List.iter (fun (f, r) -> c := (!c * r) + f i) codes;
        !c
      in
      for i = 0 to n - 1 do
        let c = combined i in
        enter (fun c -> if idx.(c) >= 0 then Some idx.(c) else None) i c;
        if idx.(c) < 0 then idx.(c) <- gids.(i)
      done
  | None -> (
      match kcis with
      | [ ci ] ->
          let f = fetcher ctx slab ci in
          let tbl : int Row_table.Scalar.t = Row_table.Scalar.create 64 in
          for i = 0 to n - 1 do
            let v = f i in
            (match Row_table.Scalar.find_opt tbl v with
            | Some g ->
                gids.(i) <- g;
                if want_rows then Vec.push (Vec.unsafe_get grows g) i
            | None ->
                let g = Vec.length first in
                Row_table.Scalar.replace tbl v g;
                gids.(i) <- g;
                Vec.push first i;
                if want_rows then begin
                  let cell = Vec.create () in
                  Vec.push cell i;
                  Vec.push grows cell
                end)
          done
      | kcis ->
          let fs = Array.of_list (List.map (fetcher ctx slab) kcis) in
          let tbl : int Row_table.t = Row_table.create 64 in
          for i = 0 to n - 1 do
            let key = Array.map (fun f -> f i) fs in
            (match Row_table.find_opt tbl key with
            | Some g ->
                gids.(i) <- g;
                if want_rows then Vec.push (Vec.unsafe_get grows g) i
            | None ->
                let g = Vec.length first in
                Row_table.replace tbl key g;
                gids.(i) <- g;
                Vec.push first i;
                if want_rows then begin
                  let cell = Vec.create () in
                  Vec.push cell i;
                  Vec.push grows cell
                end)
          done));
  (gids, Vec.to_array first, grows)

(* --- eager aggregate kernels ------------------------------------------------- *)

(* A slot admits an eager kernel when its per-group value can be computed by
   a typed accumulator whose result provably matches Aggregate.compute_iter:
   COUNT( * ) (group size), and non-DISTINCT COUNT/SUM/AVG/MIN/MAX over a
   typed column. Each kernel is one column-at-a-time loop over the slab's
   logical rows in ascending order — the row engine's exact accumulation
   order, so float sums see the same addition sequence. The loop bodies are
   specialised on (map, null mask) so the hot path runs without per-row
   closure calls; an absent mask is the empty array sentinel. *)
type eager = { run : unit -> unit; value : int -> Value.t }

let eager_of ctx (slab : slab) ~ngroups ~(gcount : int array) ~(gids : int array)
    ((func, distinct, arg) : Ast.agg_func * bool * Ast.agg_arg) : eager option =
  let n = slab.n in
  if distinct then None
  else
    match (func, arg) with
    | Ast.Count, Ast.Star ->
        Some { run = (fun () -> ()); value = (fun g -> Value.Int gcount.(g)) }
    | (Ast.Count | Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), Ast.Arg (Ast.Col c) -> (
        match Compiled.resolve_opt ctx.headers c with
        | None -> None
        | Some ci -> (
            let t = ctx.col_tbl.(ci) in
            let col = ctx.chunks.(t).Chunk.cols.(ctx.col_off.(ci)) in
            let m = map_of slab t in
            let mask = match col.Chunk.nulls with None -> [||] | Some b -> b in
            let nncnt = Array.make ngroups 0 in
            match (func, col.Chunk.data) with
            | Ast.Count, (Chunk.Ints _ | Chunk.Floats _) ->
                let run () =
                  match m with
                  | None ->
                      if Array.length mask = 0 then
                        for i = 0 to n - 1 do
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1
                        done
                      else
                        for i = 0 to n - 1 do
                          if not mask.(i) then begin
                            let g = gids.(i) in
                            nncnt.(g) <- nncnt.(g) + 1
                          end
                        done
                  | Some m ->
                      for i = 0 to n - 1 do
                        let p = m.(i) in
                        if Array.length mask = 0 || not mask.(p) then begin
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1
                        end
                      done
                in
                Some { run; value = (fun g -> Value.Int nncnt.(g)) }
            | Ast.Count, Chunk.Strings s ->
                let codes = s.Chunk.codes in
                let run () =
                  match m with
                  | None ->
                      for i = 0 to n - 1 do
                        if codes.(i) >= 0 then begin
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1
                        end
                      done
                  | Some m ->
                      for i = 0 to n - 1 do
                        if codes.(m.(i)) >= 0 then begin
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1
                        end
                      done
                in
                Some { run; value = (fun g -> Value.Int nncnt.(g)) }
            | Ast.Sum, Chunk.Ints a ->
                let isum = Array.make ngroups 0 in
                let run () =
                  match m with
                  | None ->
                      if Array.length mask = 0 then
                        for i = 0 to n - 1 do
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1;
                          isum.(g) <- isum.(g) + a.(i)
                        done
                      else
                        for i = 0 to n - 1 do
                          if not mask.(i) then begin
                            let g = gids.(i) in
                            nncnt.(g) <- nncnt.(g) + 1;
                            isum.(g) <- isum.(g) + a.(i)
                          end
                        done
                  | Some m ->
                      for i = 0 to n - 1 do
                        let p = m.(i) in
                        if Array.length mask = 0 || not mask.(p) then begin
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1;
                          isum.(g) <- isum.(g) + a.(p)
                        end
                      done
                in
                Some
                  {
                    run;
                    value =
                      (fun g -> if nncnt.(g) = 0 then Value.Null else Value.Int isum.(g));
                  }
            | (Ast.Sum | Ast.Avg), Chunk.Floats a ->
                let fsum = Array.make ngroups 0.0 in
                let run () =
                  match m with
                  | None ->
                      if Array.length mask = 0 then
                        for i = 0 to n - 1 do
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1;
                          fsum.(g) <- fsum.(g) +. a.(i)
                        done
                      else
                        for i = 0 to n - 1 do
                          if not mask.(i) then begin
                            let g = gids.(i) in
                            nncnt.(g) <- nncnt.(g) + 1;
                            fsum.(g) <- fsum.(g) +. a.(i)
                          end
                        done
                  | Some m ->
                      for i = 0 to n - 1 do
                        let p = m.(i) in
                        if Array.length mask = 0 || not mask.(p) then begin
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1;
                          fsum.(g) <- fsum.(g) +. a.(p)
                        end
                      done
                in
                let value =
                  if func = Ast.Sum then fun g ->
                    if nncnt.(g) = 0 then Value.Null else Value.Float fsum.(g)
                  else fun g ->
                    if nncnt.(g) = 0 then Value.Null
                    else Value.Float (fsum.(g) /. float_of_int nncnt.(g))
                in
                Some { run; value }
            | Ast.Avg, Chunk.Ints a ->
                let fsum = Array.make ngroups 0.0 in
                let run () =
                  match m with
                  | None ->
                      if Array.length mask = 0 then
                        for i = 0 to n - 1 do
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1;
                          fsum.(g) <- fsum.(g) +. float_of_int a.(i)
                        done
                      else
                        for i = 0 to n - 1 do
                          if not mask.(i) then begin
                            let g = gids.(i) in
                            nncnt.(g) <- nncnt.(g) + 1;
                            fsum.(g) <- fsum.(g) +. float_of_int a.(i)
                          end
                        done
                  | Some m ->
                      for i = 0 to n - 1 do
                        let p = m.(i) in
                        if Array.length mask = 0 || not mask.(p) then begin
                          let g = gids.(i) in
                          nncnt.(g) <- nncnt.(g) + 1;
                          fsum.(g) <- fsum.(g) +. float_of_int a.(p)
                        end
                      done
                in
                Some
                  {
                    run;
                    value =
                      (fun g ->
                        if nncnt.(g) = 0 then Value.Null
                        else Value.Float (fsum.(g) /. float_of_int nncnt.(g)));
                  }
            | (Ast.Min | Ast.Max), Chunk.Ints a ->
                let lt = func = Ast.Min in
                let best = Array.make ngroups 0 in
                let hit g v =
                  if nncnt.(g) = 0 then best.(g) <- v
                  else if (if lt then v < best.(g) else v > best.(g)) then best.(g) <- v;
                  nncnt.(g) <- nncnt.(g) + 1
                in
                let run () =
                  match m with
                  | None ->
                      if Array.length mask = 0 then
                        for i = 0 to n - 1 do
                          hit gids.(i) a.(i)
                        done
                      else
                        for i = 0 to n - 1 do
                          if not mask.(i) then hit gids.(i) a.(i)
                        done
                  | Some m ->
                      for i = 0 to n - 1 do
                        let p = m.(i) in
                        if Array.length mask = 0 || not mask.(p) then hit gids.(i) a.(p)
                      done
                in
                Some
                  {
                    run;
                    value =
                      (fun g -> if nncnt.(g) = 0 then Value.Null else Value.Int best.(g));
                  }
            | (Ast.Min | Ast.Max), Chunk.Floats a ->
                let lt = func = Ast.Min in
                let best = Array.make ngroups 0.0 in
                (* Value.compare on floats is Stdlib.compare *)
                let hit g v =
                  if nncnt.(g) = 0 then best.(g) <- v
                  else if
                    (if lt then compare (v : float) best.(g) < 0
                     else compare (v : float) best.(g) > 0)
                  then best.(g) <- v;
                  nncnt.(g) <- nncnt.(g) + 1
                in
                let run () =
                  match m with
                  | None ->
                      if Array.length mask = 0 then
                        for i = 0 to n - 1 do
                          hit gids.(i) a.(i)
                        done
                      else
                        for i = 0 to n - 1 do
                          if not mask.(i) then hit gids.(i) a.(i)
                        done
                  | Some m ->
                      for i = 0 to n - 1 do
                        let p = m.(i) in
                        if Array.length mask = 0 || not mask.(p) then hit gids.(i) a.(p)
                      done
                in
                Some
                  {
                    run;
                    value =
                      (fun g -> if nncnt.(g) = 0 then Value.Null else Value.Float best.(g));
                  }
            | (Ast.Min | Ast.Max), Chunk.Strings st ->
                let lt = func = Ast.Min in
                let codes = st.Chunk.codes and vals = st.Chunk.vals in
                let best = Array.make ngroups "" in
                let hit g p =
                  if codes.(p) >= 0 then begin
                    let v = vals.(p) in
                    if nncnt.(g) = 0 then best.(g) <- v
                    else if
                      (if lt then compare (v : string) best.(g) < 0
                       else compare (v : string) best.(g) > 0)
                    then best.(g) <- v;
                    nncnt.(g) <- nncnt.(g) + 1
                  end
                in
                let run () =
                  match m with
                  | None ->
                      for i = 0 to n - 1 do
                        hit gids.(i) i
                      done
                  | Some m ->
                      for i = 0 to n - 1 do
                        hit gids.(i) m.(i)
                      done
                in
                Some
                  {
                    run;
                    value =
                      (fun g -> if nncnt.(g) = 0 then Value.Null else Value.String best.(g));
                  }
            | _ -> None))
    | _ -> None

(* --- select-body execution ---------------------------------------------------- *)

type task = {
  steps : step array;
  projections : Ast.projection list;
  group_by : Ast.expr list;
  having : Ast.expr option;
}

(* The grouped tail: replicates select_tail's grouped path over the slab,
   with eager typed accumulators when every slot admits one, and the exact
   lazy compute_iter evaluation otherwise. *)
let run_grouped ctx (slab : slab) (task : task)
    (projections : (Ast.expr * string) list) (out_headers : header array) : result_set =
  let n = slab.n in
  let kcis =
    List.map
      (fun e ->
        plain_expr e;
        match e with
        | Ast.Col c -> (
            match Compiled.resolve_opt ctx.headers c with
            | Some ci -> ci
            | None -> fallback ())
        | _ -> fallback ())
      task.group_by
  in
  (* HAVING legitimately contains aggregates; only subqueries fall back *)
  Option.iter (fun h -> if not (no_subquery h) then fallback ()) task.having;
  (* compile HAVING first, then projections: slot registration order must
     match the row engine's *)
  let slots = Compiled.make_slots () in
  let compile e =
    Compiled.compile ~subquery:no_subquery_fn ~agg:slots ~headers:ctx.headers ~outer:[] e
  in
  let chaving = Option.map compile task.having in
  let cps = Array.of_list (List.map (fun (e, _) -> compile e) projections) in
  let slot_arr = Array.of_list (Compiled.slots slots) in
  let spec_arr = Array.of_list (Compiled.specs slots) in
  let nslots = Array.length slot_arr in
  let single_group = kcis = [] in
  let gids, first, grows =
    (* we need ngroups before building accumulators, so: group first without
       row lists, decide eagerness, and only re-collect row lists when some
       slot needs them. Grouping is deterministic, so the second pass (over
       the same data) yields identical ids. An aggregate query without
       GROUP BY is one big group and needs no grouping pass at all. *)
    if single_group then
      (Array.make n 0, [| (if n > 0 then 0 else -1) |], Vec.create ())
    else group_ids ctx slab kcis ~want_rows:false
  in
  let ngroups = Array.length first in
  let gcount = Array.make ngroups 0 in
  let eager_slots =
    let rec go k acc =
      if k >= nslots then Some (List.rev acc)
      else
        match eager_of ctx slab ~ngroups ~gcount ~gids spec_arr.(k) with
        | Some e -> go (k + 1) (e :: acc)
        | None -> None
    in
    go 0 []
  in
  let values_of : int -> Value.t Lazy.t array =
    match eager_slots with
    | Some eagers ->
        if single_group then gcount.(0) <- n
        else
          for i = 0 to n - 1 do
            let g = gids.(i) in
            gcount.(g) <- gcount.(g) + 1
          done;
        List.iter (fun (e : eager) -> e.run ()) eagers;
        let eagers = Array.of_list eagers in
        fun g -> Array.map (fun (e : eager) -> Lazy.from_val (e.value g)) eagers
    | None ->
        (* generic path: per-group row lists + Aggregate.compute_iter with
           argument closures evaluated over a scratch row *)
        let grows =
          if single_group then begin
            let all = Vec.create () in
            let cell = Vec.create () in
            for i = 0 to n - 1 do
              Vec.push cell i
            done;
            Vec.push all cell;
            all
          end
          else if Vec.length grows > 0 then grows
          else begin
            let _, _, grows = group_ids ctx slab kcis ~want_rows:true in
            grows
          end
        in
        let scratch = Array.make (Array.length ctx.headers) Value.Null in
        let fill_of k =
          match spec_arr.(k) with
          | _, _, Ast.Star -> []
          | _, _, Ast.Arg e ->
              List.map
                (fun c ->
                  match Compiled.resolve_opt ctx.headers c with
                  | Some ci -> (ci, fetcher ctx slab ci)
                  | None -> fallback ())
                (Ast.expr_columns e)
        in
        let fills = Array.init nslots fill_of in
        let compute_slot k g =
          let sl = slot_arr.(k) in
          let grows = Vec.unsafe_get grows g in
          let gn = Vec.length grows in
          match sl.Compiled.arg with
          | None ->
              Aggregate.compute sl.Compiled.func ~distinct:sl.Compiled.distinct
                ~star:sl.Compiled.star ~nrows:gn []
          | Some c ->
              let fill = fills.(k) in
              Aggregate.compute_iter sl.Compiled.func ~distinct:sl.Compiled.distinct
                ~star:sl.Compiled.star ~nrows:gn ~iter:(fun f ->
                  Vec.iter
                    (fun i ->
                      List.iter (fun (ci, fc) -> scratch.(ci) <- fc i) fill;
                      f (c scratch))
                    grows)
        in
        fun g -> Array.init nslots (fun k -> lazy (compute_slot k g))
  in
  (* representative row per group: the group's first source row, with just
     the columns HAVING/projections actually read (fresh array per group —
     lazy slot forcing must not observe a reused buffer) *)
  let rep_cols =
    let tbl = Hashtbl.create 16 in
    let add e =
      List.iter
        (fun c ->
          match Compiled.resolve_opt ctx.headers c with
          | Some ci -> Hashtbl.replace tbl ci ()
          | None -> ())
        (Ast.expr_columns e)
    in
    List.iter (fun (e, _) -> add e) projections;
    Option.iter add task.having;
    Hashtbl.fold (fun ci () acc -> (ci, fetcher ctx slab ci) :: acc) tbl []
  in
  let width = Array.length ctx.headers in
  let out = Vec.create () in
  for g = 0 to ngroups - 1 do
    let representative = Array.make width Value.Null in
    let fi = first.(g) in
    if fi >= 0 then List.iter (fun (ci, f) -> representative.(ci) <- f fi) rep_cols;
    Compiled.set_group slots (values_of g);
    let keep =
      match chaving with None -> true | Some c -> Eval.is_truthy (c representative)
    in
    if keep then Vec.push out (Array.map (fun c -> c representative) cps)
  done;
  { chead = out_headers; crows = out }

(* Run one recognised select body (no ORDER BY handling): the WHERE-filtered
   join pipeline plus either a plain column projection or the grouped tail. *)
let run_body ?pool db (task : task) : result_set =
  ignore db;
  let ctx = ctx_of_steps pool task.steps in
  let slab = build_slab ctx task.steps in
  let projections = Compiled.expand_projections ctx.headers task.projections in
  let any_agg =
    List.exists (fun (e, _) -> has_aggregate e) projections
    || (match task.having with Some h -> has_aggregate h | None -> false)
  in
  let out_headers =
    Array.of_list
      (List.map (fun ((_, name) : _ * string) -> { alias = None; name }) projections)
  in
  if task.group_by = [] && not any_agg then begin
    (match task.having with Some _ -> fallback () | None -> ());
    List.iter (fun (e, _) -> plain_expr e) projections;
    let proj = projection_cols ctx projections in
    { chead = out_headers;
      crows = materialize ctx slab proj ~order:None ~start:0 ~take:slab.n }
  end
  else run_grouped ctx slab task projections out_headers

(* Full ungrouped queries including ORDER BY + LIMIT/OFFSET: sort keys come
   straight from the slab's typed columns ({!Key_sort}), only the surviving
   window is materialised. *)
let run_query ?pool db (task : task) ~(order_by : (Ast.expr * Ast.order_dir) list)
    ~(limit : int option) ~(offset : int option) : result_set =
  ignore db;
  let ctx = ctx_of_steps pool task.steps in
  (match task.having with Some _ -> fallback () | None -> ());
  let projections = Compiled.expand_projections ctx.headers task.projections in
  if
    List.exists (fun (e, _) -> has_aggregate e) projections
    || task.group_by <> []
  then fallback ();
  List.iter (fun (e, _) -> plain_expr e) projections;
  let out_headers =
    Array.of_list
      (List.map (fun ((_, name) : _ * string) -> { alias = None; name }) projections)
  in
  let proj = projection_cols ctx projections in
  let nproj = Array.length proj in
  (* resolve order keys against the visible output first (as sort_slice
     does), then as hidden source columns (the row engine's hidden
     projection trick resolves them against the source headers) *)
  let keys =
    List.filter_map
      (fun (e, dir) ->
        plain_expr e;
        match e with
        | Ast.Lit (Ast.Int pos) when pos >= 1 && pos <= nproj -> Some (proj.(pos - 1), dir)
        | Ast.Lit _ -> None (* constant key: every comparison is 0 *)
        | Ast.Col c -> (
            match Compiled.resolve_opt out_headers c with
            | Some j -> Some (proj.(j), dir)
            | None -> (
                match Compiled.resolve_opt ctx.headers c with
                | Some ci -> Some (ci, dir)
                | None -> fallback ()))
        | _ -> fallback ())
      order_by
  in
  let slab = build_slab ctx task.steps in
  let n = slab.n in
  let order =
    if keys = [] then None
    else begin
      let gathered ci : Key_sort.key =
        let t = ctx.col_tbl.(ci) in
        let col = ctx.chunks.(t).Chunk.cols.(ctx.col_off.(ci)) in
        let phys = phys_of slab t in
        let shared = map_of slab t = None in
        let gather_f : 'a. 'a array -> 'a array =
         fun a -> if shared then a else Array.init n (fun i -> a.(phys i))
        in
        let nulls () =
          match col.Chunk.nulls with
          | None -> None
          | Some m -> Some (gather_f m)
        in
        match col.Chunk.data with
        | Chunk.Ints a -> Key_sort.K_int (gather_f a, nulls ())
        | Chunk.Floats a -> Key_sort.K_float (gather_f a, nulls ())
        | Chunk.Strings s ->
            let m =
              if Array.exists (fun c -> c < 0) s.Chunk.codes then
                Some (Array.init n (fun i -> s.Chunk.codes.(phys i) < 0))
              else None
            in
            Key_sort.K_string (gather_f s.Chunk.vals, m)
        | Chunk.Boxed ->
            let f = fetcher ctx slab ci in
            Key_sort.K_val (Array.init n f)
      in
      let cmps =
        Array.of_list
          (List.map
             (fun (ci, dir) ->
               let c = Key_sort.compare_fn (gathered ci) in
               match dir with Ast.Asc -> c | Ast.Desc -> fun a b -> -c a b)
             keys)
      in
      let nk = Array.length cmps in
      let cmp a b =
        let rec go i =
          if i >= nk then compare (a : int) b
          else
            let c = cmps.(i) a b in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      let wanted =
        match limit with
        | None -> None
        | Some l ->
            let k = max 0 (Option.value offset ~default:0) + max 0 l in
            if k < n then Some k else None
      in
      Some (Key_sort.sorted ~cmp ~n ~wanted)
    end
  in
  (* replicate Row_vec.slice's clamping over the (possibly top-K-truncated)
     ordered index space before materialising anything *)
  let olen = match order with None -> n | Some o -> Array.length o in
  let start = min (max 0 (Option.value offset ~default:0)) olen in
  let take =
    match limit with None -> olen - start | Some l -> max 0 (min l (olen - start))
  in
  { chead = out_headers; crows = materialize ctx slab proj ~order ~start ~take }

(* --- recognisers / public entry points ---------------------------------------- *)

let task_of_select db (s : Ast.select) : task =
  if s.distinct then fallback ();
  let steps =
    match s.from with [ tr ] -> Array.of_list (flatten_tref db tr []) | _ -> fallback ()
  in
  if Array.length steps = 0 then fallback ();
  let ctx0 = ctx_of_steps None steps in
  (match s.where with Some w -> attach ctx0 steps w | None -> ());
  { steps; projections = s.projections; group_by = s.group_by; having = s.having }

let task_of_select_plan db (sp : Plan.select_plan) : task =
  if sp.Plan.distinct then fallback ();
  let source = match sp.Plan.source with Some r -> r | None -> fallback () in
  let with_filters, prefix_preds = flatten_rel db source in
  let steps = Array.of_list (List.map fst with_filters) in
  if Array.length steps = 0 then fallback ();
  let ctx0 = ctx_of_steps None steps in
  (* scan-level filters first (innermost first), then predicates above join
     subtrees (inner to outer), then WHERE — the row engine's evaluation
     order *)
  List.iteri
    (fun t (_, sfs) -> List.iter (fun pred -> attach ctx0 steps ~prefix:(t + 1) pred) sfs)
    with_filters;
  List.iter (fun (ptables, pred) -> attach ctx0 steps ~prefix:ptables pred) prefix_preds;
  (match sp.Plan.where with Some w -> attach ctx0 steps w | None -> ());
  {
    steps;
    projections = sp.Plan.projections;
    group_by = sp.Plan.group_by;
    having = sp.Plan.having;
  }

let guard (f : unit -> result_set) : result_set option =
  try Some (f ())
  with Fallback | Compiled.Error _ | Eval.Error _ | Aggregate.Error _ -> None

let query ?pool db (q : Ast.query) : result_set option =
  if not !enabled then None
  else
    guard (fun () ->
        if q.Ast.ctes <> [] then fallback ();
        match q.Ast.body with
        | Ast.Select s ->
            run_query ?pool db (task_of_select db s) ~order_by:q.Ast.order_by
              ~limit:q.Ast.limit ~offset:q.Ast.offset
        | _ -> fallback ())

let select ?pool db (s : Ast.select) : result_set option =
  if not !enabled then None else guard (fun () -> run_body ?pool db (task_of_select db s))

let plan_query ?pool db (p : Plan.t) : result_set option =
  if not !enabled then None
  else
    guard (fun () ->
        if p.Plan.ctes <> [] then fallback ();
        match p.Plan.body with
        | Plan.Plan_select sp ->
            run_query ?pool db (task_of_select_plan db sp) ~order_by:p.Plan.order_by
              ~limit:p.Plan.limit ~offset:p.Plan.offset
        | _ -> fallback ())

let plan_select ?pool db (sp : Plan.select_plan) : result_set option =
  if not !enabled then None
  else guard (fun () -> run_body ?pool db (task_of_select_plan db sp))
