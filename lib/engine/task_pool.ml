(* A reusable pool of worker domains for data-parallel query execution.

   One pool is created per process (or per server) and shared by every
   query: spawning a domain costs milliseconds, far more than a typical
   query, so domains must be long-lived. The pool runs "chunked" jobs: a
   job is a function over chunk indices [0, chunks); idle workers (and the
   submitting caller, which always participates) repeatedly claim the next
   unclaimed chunk with a fetch-and-add until none remain. Chunk claiming
   is the only scheduling — there is no per-chunk queue — which keeps the
   pool allocation-free on the hot path and naturally balances skewed
   chunks, the same effect morsel-driven work stealing buys industrial
   engines.

   Concurrency contract:
   - [run] may be called from any systhread or domain. Only one job runs at
     a time; a submission that finds the pool busy — including a *nested*
     submission from inside a running chunk — executes its chunks inline in
     the caller. That makes nested parallel operators (a subquery evaluated
     inside a parallel filter, say) trivially safe: the inner level just
     degrades to sequential.
   - Exceptions raised by chunk functions are caught in the worker, and the
     first one is re-raised in the submitting caller after every chunk has
     finished (chunks after a failure still run; chunk functions must be
     independent).
   - After [shutdown] (idempotent, joins every worker domain) the pool
     stays usable: jobs simply run inline. *)

type job = {
  id : int;
  chunks : int;
  next : int Atomic.t; (* next unclaimed chunk *)
  completed : int Atomic.t; (* chunks finished (successfully or not) *)
  f : int -> unit;
  failed : exn option Atomic.t; (* first exception, re-raised by the caller *)
}

type t = {
  domains : int; (* total participants: workers + the caller *)
  mutable workers : unit Domain.t array;
  m : Mutex.t; (* guards [job] / [stopping], pairs with both conditions *)
  work : Condition.t; (* signalled when a job is posted or on shutdown *)
  finished : Condition.t; (* signalled when a job's last chunk completes *)
  mutable job : job option;
  mutable stopping : bool;
  submit : Mutex.t; (* held for the duration of one [run]; try_lock = busy probe *)
  job_ids : int Atomic.t;
  mutable live : bool;
}

let domains t = t.domains

(* Lifetime counters, read by the stats/metrics surface. Global rather than
   per-pool so the counting survives pool replacement and costs one
   fetch-and-add per chunk, not a field in the hot job record. *)
let caller_chunks = Atomic.make 0
let worker_chunks = Atomic.make 0
let inline_jobs = Atomic.make 0

type stats = { jobs : int; inline_jobs : int; caller_chunks : int; worker_chunks : int }

(* Claim and execute chunks of [j] until none remain. Runs in workers and in
   the submitting caller alike. *)
let work_on t ~caller j =
  let claimed_by = if caller then caller_chunks else worker_chunks in
  let rec claim () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.chunks then begin
      ignore (Atomic.fetch_and_add claimed_by 1);
      (try j.f i
       with e -> ignore (Atomic.compare_and_set j.failed None (Some e)));
      let done_ = 1 + Atomic.fetch_and_add j.completed 1 in
      if done_ = j.chunks then begin
        (* the caller may already be waiting: broadcast under the mutex so
           the wake-up cannot be lost *)
        Mutex.lock t.m;
        Condition.broadcast t.finished;
        Mutex.unlock t.m
      end;
      claim ()
    end
  in
  claim ()

let worker t () =
  let last = ref (-1) in
  let rec loop () =
    Mutex.lock t.m;
    let rec await () =
      if t.stopping then None
      else
        match t.job with
        | Some j when j.id <> !last -> Some j
        | _ ->
          Condition.wait t.work t.m;
          await ()
    in
    let claimed = await () in
    Mutex.unlock t.m;
    match claimed with
    | None -> ()
    | Some j ->
      last := j.id;
      work_on t ~caller:false j;
      loop ()
  in
  loop ()

let create ~domains:n =
  if n < 1 || n > 128 then invalid_arg "Task_pool.create: domains must be in [1, 128]";
  let t =
    {
      domains = n;
      workers = [||];
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      stopping = false;
      submit = Mutex.create ();
      job_ids = Atomic.make 0;
      live = true;
    }
  in
  t.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (worker t));
  t

let run_inline ~chunks f =
  for i = 0 to chunks - 1 do
    f i
  done

let run_degraded ~chunks f =
  ignore (Atomic.fetch_and_add inline_jobs 1);
  run_inline ~chunks f

let run t ~chunks f =
  if chunks <= 0 then ()
  else if chunks = 1 then f 0
  else if t.domains <= 1 || not t.live then run_degraded ~chunks f
  else if not (Mutex.try_lock t.submit) then
    (* busy: a job is in flight (possibly ours — a nested submission from
       inside a chunk). Degrade to inline execution. *)
    run_degraded ~chunks f
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.submit)
      (fun () ->
        let j =
          {
            id = Atomic.fetch_and_add t.job_ids 1;
            chunks;
            next = Atomic.make 0;
            completed = Atomic.make 0;
            f;
            failed = Atomic.make None;
          }
        in
        Mutex.lock t.m;
        t.job <- Some j;
        Condition.broadcast t.work;
        Mutex.unlock t.m;
        (* the caller participates instead of blocking *)
        work_on t ~caller:true j;
        Mutex.lock t.m;
        while Atomic.get j.completed < j.chunks do
          Condition.wait t.finished t.m
        done;
        t.job <- None;
        Mutex.unlock t.m;
        match Atomic.get j.failed with Some e -> raise e | None -> ())

let shutdown t =
  (* taking [submit] first guarantees no job is in flight *)
  Mutex.lock t.submit;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.submit)
    (fun () ->
      if t.live then begin
        Mutex.lock t.m;
        t.stopping <- true;
        Condition.broadcast t.work;
        Mutex.unlock t.m;
        Array.iter Domain.join t.workers;
        t.workers <- [||];
        t.live <- false
      end)

let is_parallel t = t.live && t.domains > 1

let stats t =
  {
    jobs = Atomic.get t.job_ids;
    inline_jobs = Atomic.get inline_jobs;
    caller_chunks = Atomic.get caller_chunks;
    worker_chunks = Atomic.get worker_chunks;
  }
