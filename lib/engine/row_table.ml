(* Hashtable keyed by [Value.t array] rows/keys, via a hash/equal pair that
   agrees with {!Value.equal} (so [Int 2] and [Float 2.] collide and compare
   equal, matching SQL [=]). Shared by hash-join build sides, GROUP BY,
   DISTINCT, and the set operations, replacing polymorphic hashing of
   freshly-allocated [Value.t list] keys. *)

module Key = struct
  type t = Value.t array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash a =
    let h = ref 17 in
    for i = 0 to Array.length a - 1 do
      h := (!h * 31) + Value.hash a.(i)
    done;
    !h land max_int
end

include Hashtbl.Make (Key)

(* Scalar variant for single-column keys (the common join/grouping case):
   avoids allocating a one-element key array per row. *)
module Scalar = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Unboxed-int variant for key columns proven to hold only small integers;
   hashing and equality never touch a Value.t block. *)
module Int_key = Hashtbl.Make (struct
  type t = int

  let equal (a : int) b = a = b
  let hash = Hashtbl.hash
end)

let two_53 = 9007199254740992 (* 2^53: ints exactly representable as floats *)

let small_int_key (v : Value.t) =
  match v with Value.Int i -> i > -two_53 && i < two_53 | _ -> false

(* The int a value indexes under in an all-small-int table, if any. A float
   equal (under SQL [=]) to a small int maps to that int; anything else can
   never match a small-int key. *)
let int_key_of (v : Value.t) =
  match v with
  | Value.Int i -> if i > -two_53 && i < two_53 then Some i else None
  | Value.Float f ->
    if Float.is_integer f && Float.abs f < float_of_int two_53 then
      Some (int_of_float f)
    else None
  | _ -> None

(* First-occurrence dedupe over a row vector; the single helper behind
   SELECT DISTINCT, UNION, and EXCEPT/INTERSECT (distinct variants). *)
let dedupe_rows (rows : Value.t array Row_vec.t) : Value.t array Row_vec.t =
  let seen = create (max 16 (Row_vec.length rows)) in
  Row_vec.filter
    (fun row ->
      if mem seen row then false
      else begin
        replace seen row ();
        true
      end)
    rows

(* Multiset of rows as a count table; used by EXCEPT/INTERSECT. *)
let counts_of (rows : Value.t array Row_vec.t) : int ref t =
  let tbl = create (max 16 (Row_vec.length rows)) in
  Row_vec.iter
    (fun row ->
      match find_opt tbl row with
      | Some c -> incr c
      | None -> replace tbl row (ref 1))
    rows;
  tbl
