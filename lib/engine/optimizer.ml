module Ast = Flex_sql.Ast

(* Rule-based + cost-based rewriting of logical plans ({!Plan.t}).

   The logical phase is semantics-preserving under SQL 3-valued logic:
   constant folding (only identities that never drop a runtime-error site),
   single-use CTE inlining, outer-join -> inner-join reduction on
   null-rejecting WHERE conjuncts, trivially-false short-circuit, conjunct
   splitting with predicate pushdown through joins and into derived tables,
   and projection pruning inside derived tables.

   The physical phase consumes {!Metrics} as optimizer statistics — the same
   per-table row counts and max-frequency [mf] bounds the paper collects for
   elastic sensitivity (§3.4) double as cardinality statistics: [mf] is
   exactly the worst-case per-key join fanout. It greedily reorders
   inner-join chains by estimated output cardinality and picks each hash
   join's build side.

   The optimizer is invisible to the privacy analysis by construction:
   {!Flex} always analyses the original AST and only execution consumes the
   rewritten plan. *)

module SS = Set.Make (String)

let lc = String.lowercase_ascii

(* --- small AST utilities ----------------------------------------------------- *)

let and_all = function
  | [] -> Ast.Lit (Ast.Bool true)
  | e :: rest -> List.fold_left (fun acc e -> Ast.Binop (Ast.And, acc, e)) e rest

let has_subquery e = Ast.expr_subqueries e <> []

let has_agg e =
  Ast.fold_expr (fun a e -> a || match e with Ast.Agg _ -> true | _ -> false) false e

let is_false_lit = function Ast.Lit (Ast.Bool false) | Ast.Lit Ast.Null -> true | _ -> false

let map_children f (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Lit _ | Ast.Col _ | Ast.Exists _ | Ast.Scalar_subquery _ -> e
  | Ast.Binop (op, a, b) -> Ast.Binop (op, f a, f b)
  | Ast.Unop (op, a) -> Ast.Unop (op, f a)
  | Ast.Agg { func; distinct; arg } ->
    Ast.Agg
      {
        func;
        distinct;
        arg = (match arg with Ast.Star -> Ast.Star | Ast.Arg e -> Ast.Arg (f e));
      }
  | Ast.Func (name, args) -> Ast.Func (name, List.map f args)
  | Ast.Case { operand; branches; else_ } ->
    Ast.Case
      {
        operand = Option.map f operand;
        branches = List.map (fun (a, b) -> (f a, f b)) branches;
        else_ = Option.map f else_;
      }
  | Ast.In { subject; negated; set } ->
    Ast.In
      {
        subject = f subject;
        negated;
        set =
          (match set with
          | Ast.In_list es -> Ast.In_list (List.map f es)
          | Ast.In_query q -> Ast.In_query q);
      }
  | Ast.Between { subject; negated; lo; hi } ->
    Ast.Between { subject = f subject; negated; lo = f lo; hi = f hi }
  | Ast.Like { subject; negated; pattern } ->
    Ast.Like { subject = f subject; negated; pattern = f pattern }
  | Ast.Is_null { subject; negated } -> Ast.Is_null { subject = f subject; negated }
  | Ast.Cast (e, ty) -> Ast.Cast (f e, ty)

(* --- constant folding -------------------------------------------------------- *)

let lit_of_value : Value.t -> Ast.lit = function
  | Value.Null -> Ast.Null
  | Value.Bool b -> Ast.Bool b
  | Value.Int i -> Ast.Int i
  | Value.Float f -> Ast.Float f
  | Value.String s -> Ast.String s

(* Closed = no columns, aggregates or subqueries anywhere: the node computes
   the same value on every row, so it can be evaluated once at plan time.
   Division by zero is safe to fold ({!Eval.divide} returns NULL, it does not
   raise); anything that does raise keeps its original node so the runtime
   error survives. *)
let closed e =
  (not (has_agg e)) && Ast.expr_subqueries e = [] && Ast.expr_columns e = []

let eval_closed e =
  (Compiled.compile ~subquery:(fun _ _ -> (0, [])) ~headers:[||] ~outer:[] e) [||]

let rec fold_const (e : Ast.expr) : Ast.expr =
  let e = map_children fold_const e in
  match e with
  | Ast.Lit _ -> e
  (* 3VL identities that only drop a literal (never a possibly-erroring
     operand): TRUE is neutral for AND, FALSE for OR. Absorption
     (FALSE AND x -> FALSE) is deliberately not applied because the engine
     evaluates both operands. *)
  | Ast.Binop (Ast.And, Ast.Lit (Ast.Bool true), x)
  | Ast.Binop (Ast.And, x, Ast.Lit (Ast.Bool true))
  | Ast.Binop (Ast.Or, Ast.Lit (Ast.Bool false), x)
  | Ast.Binop (Ast.Or, x, Ast.Lit (Ast.Bool false)) ->
    x
  | e when closed e -> ( try Ast.Lit (lit_of_value (eval_closed e)) with _ -> e)
  | e -> e

(* --- schema context ---------------------------------------------------------- *)

(* What the optimizer knows about the shape of relations: base-table columns
   come from {!Metrics} (when registered), CTE and derived-table columns from
   their projection lists. [None] = unknown schema, which disables any rule
   whose soundness depends on resolving an unqualified column reference. *)
type ctx = {
  metrics : Metrics.t option;
  ctes : (string * string list option) list; (* innermost first, lowercased *)
}

let proj_name (e : Ast.expr) (alias : string option) =
  match alias with
  | Some a -> lc a
  | None -> (
    match e with
    | Ast.Col c -> lc c.column
    | Ast.Agg { func; _ } -> Ast.agg_func_name func
    | _ -> "expr")

let rec output_names_of_body (b : Plan.body_plan) : string list option =
  match b with
  | Plan.Plan_set { left; _ } -> output_names_of_body left
  | Plan.Plan_select sp ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Ast.Proj_expr (e, alias) :: rest -> go (proj_name e alias :: acc) rest
      | (Ast.Proj_star | Ast.Proj_table_star _) :: _ -> None
    in
    go [] sp.projections

let output_names_of_plan (p : Plan.t) = output_names_of_body p.body

let table_columns ctx table =
  match List.assoc_opt (lc table) ctx.ctes with
  | Some cols -> cols
  | None -> (
    match ctx.metrics with
    | None -> None
    | Some m -> (
      match Metrics.columns m ~table with
      | [] -> (
        match Metrics.columns m ~table:(lc table) with
        | [] -> None
        | cs -> Some (List.map lc cs))
      | cs -> Some (List.map lc cs)))

type leaf = { lalias : string; lcols : string list option }

let rec leaves_of_rel ctx (r : Plan.rel) : leaf list =
  match r with
  | Plan.Scan { table; alias } -> [ { lalias = lc alias; lcols = table_columns ctx table } ]
  | Plan.Derived { plan; alias } ->
    [ { lalias = lc alias; lcols = output_names_of_plan plan } ]
  | Plan.Filter { input; _ } -> leaves_of_rel ctx input
  | Plan.Join { left; right; _ } -> leaves_of_rel ctx left @ leaves_of_rel ctx right

(* Which leaf relations does [e] reference? [Some (locals, all_local)]:
   [locals] are the referenced leaf aliases; [all_local] is false when some
   reference resolves outside the leaves (an outer/correlated reference).
   [None] = classification failed: an unqualified reference hit a leaf with
   unknown schema before finding its first match, so the executor's
   first-match resolution cannot be reproduced statically. *)
let classify ~(leaves : leaf list) (e : Ast.expr) : (SS.t * bool) option =
  let exception Bail in
  try
    let locals = ref SS.empty and all_local = ref true in
    List.iter
      (fun (c : Ast.col_ref) ->
        match c.table with
        | Some t ->
          let t = lc t in
          if List.exists (fun l -> l.lalias = t) leaves then locals := SS.add t !locals
          else all_local := false
        | None ->
          let rec go = function
            | [] -> all_local := false
            | l :: rest -> (
              match l.lcols with
              | None -> raise Bail
              | Some cols ->
                if List.mem (lc c.column) cols then locals := SS.add l.lalias !locals
                else go rest)
          in
          go leaves)
      (Ast.expr_columns e);
    Some (!locals, !all_local)
  with Bail -> None

(* --- null rejection ---------------------------------------------------------- *)

(* [e] is null-rejecting when it cannot be truthy once every column it
   references is NULL — the padded-row test that legalises outer-join
   reduction. Tested by actually evaluating the compiled predicate on an
   all-NULL row; any evaluation error conservatively answers [false]. *)
let null_rejecting (e : Ast.expr) : bool =
  has_subquery e = false
  &&
  let refs = Ast.expr_columns e in
  let headers =
    Array.of_list
      (List.map
         (fun (c : Ast.col_ref) ->
           { Compiled.alias = Option.map lc c.table; name = lc c.column })
         refs)
  in
  try
    let f = Compiled.compile ~subquery:(fun _ _ -> (0, [])) ~headers ~outer:[] e in
    not (Eval.is_truthy (f (Array.make (Array.length headers) Value.Null)))
  with _ -> false

(* --- single-use CTE inlining ------------------------------------------------- *)

(* Reference counts distinguish plan-level [Scan]s (inlinable) from table
   references inside expression subqueries (which execute through the AST
   path against [env.ctes], so the binding must survive). Scopes that
   redeclare the name report an inflated count, which simply blocks
   inlining. *)
let refs_in_expr name e =
  List.fold_left
    (fun acc q ->
      acc
      + List.length (List.filter (fun t -> lc t = name) (Ast.base_tables_of_query q)))
    0 (Ast.expr_subqueries e)

let rec refs_in_rel name (r : Plan.rel) : int * int =
  (* (scan refs, subquery refs) *)
  match r with
  | Plan.Scan { table; _ } -> ((if lc table = name then 1 else 0), 0)
  | Plan.Derived { plan; _ } -> refs_in_plan name plan
  | Plan.Filter { pred; input } ->
    let s, q = refs_in_rel name input in
    (s, q + refs_in_expr name pred)
  | Plan.Join { cond; left; right; _ } ->
    let sl, ql = refs_in_rel name left in
    let sr, qr = refs_in_rel name right in
    let qc = match cond with Ast.On e -> refs_in_expr name e | _ -> 0 in
    (sl + sr, ql + qr + qc)

and refs_in_select name (sp : Plan.select_plan) =
  let ex (s, q) e = (s, q + refs_in_expr name e) in
  let acc =
    List.fold_left
      (fun acc p -> match p with Ast.Proj_expr (e, _) -> ex acc e | _ -> acc)
      (0, 0) sp.projections
  in
  let acc = match sp.where with Some e -> ex acc e | None -> acc in
  let acc = List.fold_left ex acc sp.group_by in
  let acc = match sp.having with Some e -> ex acc e | None -> acc in
  match sp.source with
  | Some r ->
    let s, q = refs_in_rel name r in
    (fst acc + s, snd acc + q)
  | None -> acc

and refs_in_body name (b : Plan.body_plan) =
  match b with
  | Plan.Plan_select sp -> refs_in_select name sp
  | Plan.Plan_set { left; right; _ } ->
    let sl, ql = refs_in_body name left in
    let sr, qr = refs_in_body name right in
    (sl + sr, ql + qr)

and refs_in_plan name (p : Plan.t) : int * int =
  if List.exists (fun (n, _, _) -> lc n = name) p.ctes then (2, 2) (* shadowed: block *)
  else begin
    let acc =
      List.fold_left
        (fun (s, q) (_, _, cp) ->
          let s', q' = refs_in_plan name cp in
          (s + s', q + q'))
        (0, 0) p.ctes
    in
    let s, q = refs_in_body name p.body in
    let acc = (fst acc + s, snd acc + q) in
    List.fold_left (fun (s, q) (e, _) -> (s, q + refs_in_expr name e)) acc p.order_by
  end

(* Replace the unique [Scan name] with [Derived { plan = inlined }]; respects
   shadowing the same way the counters do. *)
let rec replace_scan name inlined (r : Plan.rel) : Plan.rel =
  match r with
  | Plan.Scan { table; alias } when lc table = name -> Plan.Derived { plan = inlined; alias }
  | Plan.Scan _ -> r
  | Plan.Derived { plan; alias } -> Plan.Derived { plan = replace_in_plan name inlined plan; alias }
  | Plan.Filter { pred; input } -> Plan.Filter { pred; input = replace_scan name inlined input }
  | Plan.Join j ->
    Plan.Join
      { j with left = replace_scan name inlined j.left; right = replace_scan name inlined j.right }

and replace_in_body name inlined (b : Plan.body_plan) : Plan.body_plan =
  match b with
  | Plan.Plan_select sp ->
    Plan.Plan_select { sp with source = Option.map (replace_scan name inlined) sp.source }
  | Plan.Plan_set s ->
    Plan.Plan_set
      { s with left = replace_in_body name inlined s.left; right = replace_in_body name inlined s.right }

and replace_in_plan name inlined (p : Plan.t) : Plan.t =
  if List.exists (fun (n, _, _) -> lc n = name) p.ctes then p
  else
    {
      p with
      ctes = List.map (fun (n, c, cp) -> (n, c, replace_in_plan name inlined cp)) p.ctes;
      body = replace_in_body name inlined p.body;
    }

let inline_ctes (p : Plan.t) : Plan.t =
  let names = List.map (fun (n, _, _) -> lc n) p.ctes in
  if List.length names <> List.length (List.sort_uniq compare names) then p
  else
    let rec go done_ rest body =
      match rest with
      | [] -> { p with ctes = List.rev done_; body }
      | ((name, cols, cbody) as cte) :: tail ->
        let n = lc name in
        let count (s, q) (_, _, cp) =
          let s', q' = refs_in_plan n cp in
          (s + s', q + q')
        in
        let scans, subs = List.fold_left count (refs_in_body n body) tail in
        let subs =
          List.fold_left (fun q (e, _) -> q + refs_in_expr n e) subs p.order_by
        in
        (* the CTE body itself must not reference the name (no recursion) *)
        let self_s, self_q = refs_in_plan n cbody in
        if cols = [] && subs = 0 && scans = 1 && self_s + self_q = 0 then
          let tail = List.map (fun (n', c', cp) -> (n', c', replace_in_plan n cbody cp)) tail in
          go done_ tail (replace_in_body n cbody body)
        else go (cte :: done_) tail body
    in
    go [] p.ctes p.body

(* --- outer-join reduction ---------------------------------------------------- *)

(* WHERE conjuncts that are null-rejecting on (and reference only) one side
   of an outer join kill exactly that join's padded rows, so the join
   degrades: LEFT/RIGHT -> INNER, FULL -> LEFT/RIGHT/INNER. The check uses
   [all_local]: a conjunct also referencing an enclosing scope could still be
   satisfied on a padded row through the outer value. *)
let reduce_outer ~leaves (src : Plan.rel) (conjs : Ast.expr list) : Plan.rel =
  let nr_sets =
    List.filter_map
      (fun c ->
        if has_subquery c || has_agg c then None
        else
          match classify ~leaves c with
          | Some (locals, true) when (not (SS.is_empty locals)) && null_rejecting c ->
            Some locals
          | _ -> None)
      conjs
  in
  if nr_sets = [] then src
  else
    let rec go r =
      match r with
      | Plan.Join j ->
        let left = go j.left and right = go j.right in
        let la = SS.of_list (Plan.rel_aliases left)
        and ra = SS.of_list (Plan.rel_aliases right) in
        let hit side = List.exists (fun s -> SS.subset s side) nr_sets in
        let kind =
          match j.kind with
          | Ast.Left when hit ra -> Ast.Inner
          | Ast.Right when hit la -> Ast.Inner
          | Ast.Full when hit la && hit ra -> Ast.Inner
          | Ast.Full when hit ra -> Ast.Right
          | Ast.Full when hit la -> Ast.Left
          | k -> k
        in
        Plan.Join { j with kind; left; right }
      | Plan.Filter f -> Plan.Filter { f with input = go f.input }
      | (Plan.Scan _ | Plan.Derived _) as r -> r
    in
    go src

(* --- trivially-false short-circuit ------------------------------------------- *)

(* A constant-false WHERE conjunct empties the result; emptying every leaf
   makes the joins above it O(1) while the original WHERE stays in place (so
   compile-time errors elsewhere in the query still fire). *)
let rec kill_leaves = function
  | (Plan.Scan _ | Plan.Derived _) as leaf ->
    Plan.Filter { pred = Ast.Lit (Ast.Bool false); input = leaf }
  | Plan.Filter f -> Plan.Filter { f with input = kill_leaves f.input }
  | Plan.Join j -> Plan.Join { j with left = kill_leaves j.left; right = kill_leaves j.right }

(* --- predicate pushdown ------------------------------------------------------ *)

let wrap_filter r (preds : (Ast.expr * SS.t) list) =
  if preds = [] then r else Plan.Filter { pred = and_all (List.map fst preds); input = r }

(* Substitute derived-table output names with their defining expressions so a
   pushed predicate can move inside the derived body. [None] = a reference
   qualified to the derived alias has no matching projection (an unknown
   column — left outside so the compile error is preserved). *)
let substitute (names : (string * Ast.expr) list) alias (e : Ast.expr) : Ast.expr option =
  let exception Bail in
  let rec go e =
    match e with
    | Ast.Col c ->
      let local =
        match c.table with
        | Some t -> lc t = alias
        | None -> List.mem_assoc (lc c.column) names
      in
      if not local then e
      else (
        match List.assoc_opt (lc c.column) names with
        | Some inner -> inner
        | None -> raise Bail)
    | e -> map_children go e
  in
  try Some (go e) with Bail -> None

let merge_derived (plan : Plan.t) alias (preds : (Ast.expr * SS.t) list) : Plan.rel =
  let fallback () = wrap_filter (Plan.Derived { plan; alias }) preds in
  if plan.limit <> None || plan.offset <> None then fallback ()
  else
    match plan.body with
    | Plan.Plan_select sp
      when sp.group_by = [] && sp.having = None
           && List.for_all
                (function
                  | Ast.Proj_expr (e, _) -> (not (has_agg e)) && not (has_subquery e)
                  | _ -> false)
                sp.projections ->
      (* first occurrence wins, mirroring first-match resolution *)
      let names =
        List.fold_left
          (fun acc p ->
            match p with
            | Ast.Proj_expr (e, a) ->
              let n = proj_name e a in
              if List.mem_assoc n acc then acc else (n, e) :: acc
            | _ -> acc)
          [] sp.projections
      in
      let la = lc alias in
      let merged, kept =
        List.partition_map
          (fun (p, s) ->
            match substitute names la p with
            | Some p' -> Left p'
            | None -> Right (p, s))
          preds
      in
      if merged = [] then fallback ()
      else
        let where = Some (and_all (Option.to_list sp.where @ merged)) in
        let plan = { plan with body = Plan.Plan_select { sp with where } } in
        wrap_filter (Plan.Derived { plan; alias }) kept
    | _ -> fallback ()

(* Route pushable conjuncts towards the leaves. Invariant: every predicate
   handed to [sink r] is safe to apply to [r]'s output, so falling back to a
   [Filter] at the current node is always sound. Inner/cross joins push to
   both sides and absorb straddling conjuncts into the join condition
   (upgrading comma-style cross joins to hash joins); outer joins only push
   towards their preserved side. *)
let rec sink (r : Plan.rel) (preds : (Ast.expr * SS.t) list) : Plan.rel =
  if preds = [] then r
  else
    match r with
    | Plan.Filter { pred; input } -> Plan.Filter { pred; input = sink input preds }
    | Plan.Scan _ -> wrap_filter r preds
    | Plan.Derived { plan; alias } -> merge_derived plan alias preds
    | Plan.Join j -> (
      let la = SS.of_list (Plan.rel_aliases j.left)
      and ra = SS.of_list (Plan.rel_aliases j.right) in
      let lp, rest = List.partition (fun (_, s) -> SS.subset s la) preds in
      let rp, xp = List.partition (fun (_, s) -> SS.subset s ra) rest in
      match j.kind with
      | Ast.Inner | Ast.Cross -> (
        let left = sink j.left lp and right = sink j.right rp in
        match (xp, j.cond) with
        | [], _ -> Plan.Join { j with left; right }
        | _, (Ast.On _ | Ast.Cond_none) ->
          let existing = match j.cond with Ast.On e -> [ e ] | _ -> [] in
          Plan.Join
            {
              j with
              kind = Ast.Inner;
              cond = Ast.On (and_all (existing @ List.map fst xp));
              left;
              right;
            }
        | _, (Ast.Using _ | Ast.Natural) -> wrap_filter (Plan.Join { j with left; right }) xp)
      | Ast.Left ->
        let left = sink j.left lp in
        wrap_filter (Plan.Join { j with left }) (rp @ xp)
      | Ast.Right ->
        let right = sink j.right rp in
        wrap_filter (Plan.Join { j with right }) (lp @ xp)
      | Ast.Full -> wrap_filter (Plan.Join j) preds)

let rec is_plain_scan = function
  | Plan.Scan _ -> true
  | Plan.Filter { input; _ } -> is_plain_scan input
  | Plan.Derived _ | Plan.Join _ -> false

let push_predicates ~leaves src (conjs : Ast.expr list) :
    Plan.rel * Ast.expr option =
  let original_where = match conjs with [] -> None | cs -> Some (and_all cs) in
  if is_plain_scan src then (src, original_where)
  else begin
    let pushable, kept =
      List.partition_map
        (fun c ->
          if has_subquery c || has_agg c || is_false_lit c then Either.Right c
          else
            match classify ~leaves c with
            | Some (locals, _) when not (SS.is_empty locals) -> Either.Left (c, locals)
            | _ -> Either.Right c)
        conjs
    in
    if pushable = [] then (src, original_where)
    else
      let kept = List.filter (fun c -> c <> Ast.Lit (Ast.Bool true)) kept in
      (sink src pushable, match kept with [] -> None | cs -> Some (and_all cs))
  end

(* --- derived-table projection pruning ---------------------------------------- *)

(* Drop derived-table projections whose output name the enclosing select
   never mentions. Name-based and conservative, like the executor's
   scan-time pruning: unqualified enclosing references count against every
   derived table, [*] or [alias.*] or NATURAL keeps everything, and inner
   plans with DISTINCT, set operations or ORDER BY are left alone (their
   semantics depend on the projection list). *)
let prune_derived ~sp ~extra ~(where : Ast.expr option) (src : Plan.rel) : Plan.rel =
  let exception Keep_all in
  let used = ref SS.empty and whole = ref SS.empty in
  let add_ref (c : Ast.col_ref) =
    match c.table with
    | Some t -> used := SS.add (lc t ^ "." ^ lc c.column) !used
    | None -> used := SS.add (lc c.column) !used
  in
  let add_expr e = List.iter add_ref (Ast.deep_expr_columns e) in
  try
    List.iter
      (function
        | Ast.Proj_star -> raise Keep_all
        | Ast.Proj_table_star t -> whole := SS.add (lc t) !whole
        | Ast.Proj_expr (e, _) -> add_expr e)
      sp.Plan.projections;
    Option.iter add_expr where;
    List.iter add_expr sp.Plan.group_by;
    Option.iter add_expr sp.Plan.having;
    List.iter add_expr extra;
    let rec conds = function
      | Plan.Scan _ | Plan.Derived _ -> ()
      | Plan.Filter { pred; input } ->
        add_expr pred;
        conds input
      | Plan.Join { cond; left; right; _ } ->
        (match cond with
        | Ast.On e -> add_expr e
        | Ast.Using cols -> List.iter (fun c -> used := SS.add (lc c) !used) cols
        | Ast.Natural -> raise Keep_all
        | Ast.Cond_none -> ());
        conds left;
        conds right
    in
    conds src;
    let name_used alias n = SS.mem n !used || SS.mem (alias ^ "." ^ n) !used in
    let rec prune r =
      match r with
      | Plan.Scan _ -> r
      | Plan.Filter f -> Plan.Filter { f with input = prune f.input }
      | Plan.Join j -> Plan.Join { j with left = prune j.left; right = prune j.right }
      | Plan.Derived { plan; alias } ->
        let la = lc alias in
        if SS.mem la !whole || plan.order_by <> [] then r
        else (
          match plan.body with
          | Plan.Plan_select isp
            when (not isp.distinct)
                 && List.for_all
                      (function Ast.Proj_expr _ -> true | _ -> false)
                      isp.projections ->
            (* Aggregate projections are load-bearing even when unreferenced:
               with [group_by = []] a single aggregate turns the select into a
               one-row-per-input whole-table aggregate, so dropping the last
               one would demote it to a plain projection and change the row
               count. *)
            let kept =
              List.filter
                (function
                  | Ast.Proj_expr (e, a) -> has_agg e || name_used la (proj_name e a)
                  | _ -> true)
                isp.projections
            in
            let kept =
              if kept = [] then [ List.hd isp.projections ] (* keep arity >= 1 *)
              else kept
            in
            if List.length kept = List.length isp.projections then r
            else
              Plan.Derived
                {
                  plan = { plan with body = Plan.Plan_select { isp with projections = kept } };
                  alias;
                }
          | _ -> r)
    in
    prune src
  with Keep_all -> src

(* --- logical rewrite driver -------------------------------------------------- *)

let rec map_derived f = function
  | Plan.Scan _ as r -> r
  | Plan.Derived { plan; alias } -> Plan.Derived { plan = f plan; alias }
  | Plan.Filter fl -> Plan.Filter { fl with input = map_derived f fl.input }
  | Plan.Join j -> Plan.Join { j with left = map_derived f j.left; right = map_derived f j.right }

let rec rewrite_plan ctx (p : Plan.t) : Plan.t =
  let p = inline_ctes p in
  let ctes_rev, ctx_inner =
    List.fold_left
      (fun (acc, ctx) (name, cols, cbody) ->
        let cbody = rewrite_plan ctx cbody in
        let out =
          if cols <> [] then Some (List.map lc cols) else output_names_of_plan cbody
        in
        ((name, cols, cbody) :: acc, { ctx with ctes = (lc name, out) :: ctx.ctes }))
      ([], ctx) p.ctes
  in
  let body =
    rewrite_body ctx_inner ~extra:(List.map fst p.order_by) p.body
  in
  { p with ctes = List.rev ctes_rev; body }

and rewrite_body ctx ~extra (b : Plan.body_plan) : Plan.body_plan =
  match b with
  | Plan.Plan_select sp -> Plan.Plan_select (rewrite_select ctx ~extra sp)
  | Plan.Plan_set s ->
    Plan.Plan_set
      {
        s with
        left = rewrite_body ctx ~extra:[] s.left;
        right = rewrite_body ctx ~extra:[] s.right;
      }

and rewrite_select ctx ~extra (sp : Plan.select_plan) : Plan.select_plan =
  let fold_proj = function
    | Ast.Proj_expr (e, a) -> Ast.Proj_expr (fold_const e, a)
    | p -> p
  in
  let rec fold_rel = function
    | (Plan.Scan _ | Plan.Derived _) as r -> r
    | Plan.Filter { pred; input } -> Plan.Filter { pred = fold_const pred; input = fold_rel input }
    | Plan.Join j ->
      Plan.Join
        {
          j with
          cond = (match j.cond with Ast.On e -> Ast.On (fold_const e) | c -> c);
          left = fold_rel j.left;
          right = fold_rel j.right;
        }
  in
  let sp =
    {
      sp with
      Plan.projections = List.map fold_proj sp.Plan.projections;
      where = Option.map fold_const sp.Plan.where;
      group_by = List.map fold_const sp.Plan.group_by;
      having = Option.map fold_const sp.Plan.having;
      source = Option.map fold_rel sp.Plan.source;
    }
  in
  match sp.source with
  | None -> sp
  | Some src ->
    let leaves = leaves_of_rel ctx src in
    let conjs = match sp.where with None -> [] | Some w -> Ast.conjuncts w in
    let src = reduce_outer ~leaves src conjs in
    let src = if List.exists is_false_lit conjs then kill_leaves src else src in
    let src, where = push_predicates ~leaves src conjs in
    let src = prune_derived ~sp ~extra ~where src in
    let src = map_derived (rewrite_plan ctx) src in
    { sp with source = Some src; where }

(* --- cardinality estimation -------------------------------------------------- *)

(* Metrics as statistics (paper §3.4): row counts size the scans; [mf] — the
   max frequency of a join key, precomputed for elastic sensitivity — is a
   worst-case per-key fanout, so a hash join output is bounded by
   [rows(probe) * mf(build key)] on either orientation. Primary keys give
   fanout 1. Fixed textbook selectivities fill the gaps. *)
let estimator ?metrics (p : Plan.t) : Plan.estimator =
  let cte_card : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let m_row_count table =
    match metrics with
    | None -> None
    | Some m -> (
      match Metrics.row_count m ~table with
      | Some n -> Some n
      | None -> Metrics.row_count m ~table:(lc table))
  in
  let m_mf table column =
    match metrics with
    | None -> None
    | Some m ->
      if Metrics.is_primary_key m ~table ~column || Metrics.is_primary_key m ~table:(lc table) ~column
      then Some 1
      else (
        match Metrics.mf m ~table ~column with
        | Some f -> Some f
        | None -> Metrics.mf m ~table:(lc table) ~column)
  in
  (* resolve a column reference to a base scan inside [r] *)
  let rec scan_leaves (r : Plan.rel) : (string * string) list =
    match r with
    | Plan.Scan { table; alias } -> [ (lc alias, table) ]
    | Plan.Derived _ -> []
    | Plan.Filter { input; _ } -> scan_leaves input
    | Plan.Join { left; right; _ } -> scan_leaves left @ scan_leaves right
  in
  let scan_of_ref (r : Plan.rel) (c : Ast.col_ref) : (string * string) option =
    let leaves = scan_leaves r in
    match c.table with
    | Some t -> (
      match List.assoc_opt (lc t) leaves with
      | Some table -> Some (table, lc c.column)
      | None -> None)
    | None -> (
      match metrics with
      | Some m ->
        let owns (_, table) =
          let cols =
            match Metrics.columns m ~table with
            | [] -> Metrics.columns m ~table:(lc table)
            | cs -> cs
          in
          List.mem (lc c.column) (List.map lc cols)
        in
        (match List.filter owns leaves with
        | [ (_, table) ] -> Some (table, lc c.column)
        | _ -> ( match leaves with [ (_, table) ] -> Some (table, lc c.column) | _ -> None))
      | None -> ( match leaves with [ (_, table) ] -> Some (table, lc c.column) | _ -> None))
  in
  let rec est_rel (r : Plan.rel) : float option =
    match r with
    | Plan.Scan { table; _ } -> (
      match Hashtbl.find_opt cte_card (lc table) with
      | Some c -> Some c
      | None -> Option.map float_of_int (m_row_count table))
    | Plan.Derived { plan; _ } -> est_plan plan
    | Plan.Filter { pred; input } ->
      Option.map (fun c -> c *. selectivity input pred) (est_rel input)
    | Plan.Join { kind; cond; left; right; _ } -> (
      match (est_rel left, est_rel right) with
      | Some cl, Some cr ->
        let keys, residual =
          match cond with
          | Ast.On e ->
            List.partition
              (function Ast.Binop (Ast.Eq, Ast.Col _, Ast.Col _) -> true | _ -> false)
              (Ast.conjuncts e)
          | Ast.Using cols ->
            ( List.map
                (fun c ->
                  Ast.Binop
                    ( Ast.Eq,
                      Ast.Col { Ast.table = None; column = c },
                      Ast.Col { Ast.table = None; column = c } ))
                cols,
              [] )
          | Ast.Natural | Ast.Cond_none -> ([], [])
        in
        let residual_sel =
          List.fold_left (fun acc c -> acc *. sel1 r c) 1.0 residual
        in
        let inner =
          if kind = Ast.Cross || keys = [] then cl *. cr *. residual_sel
          else begin
            let bounds =
              List.concat_map
                (function
                  | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) ->
                    let bound probe_card side_rel key_ref =
                      match scan_of_ref side_rel key_ref with
                      | Some (table, column) ->
                        Option.map
                          (fun mf -> probe_card *. float_of_int mf)
                          (m_mf table column)
                      | None -> None
                    in
                    (* a-in-left/b-in-right or the swap; take whichever resolves *)
                    List.filter_map Fun.id
                      [
                        bound cl right b; bound cr left a; bound cl right a; bound cr left b;
                      ]
                  | _ -> [])
                keys
            in
            let base =
              match bounds with
              | [] -> Float.max cl cr
              | bs -> List.fold_left Float.min (cl *. cr) bs
            in
            base *. residual_sel
          end
        in
        (match kind with
        | Ast.Inner | Ast.Cross -> Some inner
        | Ast.Left -> Some (Float.max inner cl)
        | Ast.Right -> Some (Float.max inner cr)
        | Ast.Full -> Some (Float.max inner (cl +. cr)))
      | _ -> None)
  and selectivity (input : Plan.rel) (e : Ast.expr) : float =
    List.fold_left (fun acc c -> acc *. sel1 input c) 1.0 (Ast.conjuncts e)
  and sel1 input (c : Ast.expr) : float =
    match c with
    | Ast.Lit (Ast.Bool true) -> 1.0
    | Ast.Lit (Ast.Bool false) | Ast.Lit Ast.Null -> 0.0
    | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Lit l) | Ast.Binop (Ast.Eq, Ast.Lit l, Ast.Col a)
      when l <> Ast.Null -> (
      match scan_of_ref input a with
      | Some (table, column) -> (
        match (m_mf table column, m_row_count table) with
        | Some mf, Some n when n > 0 ->
          Float.min 1.0 (float_of_int mf /. float_of_int n)
        | _ -> 0.1)
      | None -> 0.1)
    | Ast.Binop (Ast.Eq, _, _) -> 0.1
    | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) -> 1.0 /. 3.0
    | Ast.Binop (Ast.Neq, _, _) -> 0.9
    | Ast.Like { negated; _ } -> if negated then 0.75 else 0.25
    | Ast.Is_null { negated; _ } -> if negated then 0.9 else 0.1
    | Ast.Between { negated; _ } -> if negated then 0.75 else 0.25
    | Ast.In { set = Ast.In_list es; negated; _ } ->
      let s = Float.min 1.0 (0.1 *. float_of_int (List.length es)) in
      if negated then 1.0 -. s else s
    | Ast.Unop (Ast.Not, _) -> 0.5
    | _ -> 0.25
  and est_select (sp : Plan.select_plan) : float option =
    let base = match sp.source with None -> Some 1.0 | Some r -> est_rel r in
    match base with
    | None -> None
    | Some b ->
      let b =
        match (sp.where, sp.source) with
        | Some w, Some src -> b *. selectivity src w
        | _ -> b
      in
      let any_agg =
        List.exists
          (function Ast.Proj_expr (e, _) -> has_agg e | _ -> false)
          sp.projections
        || match sp.having with Some h -> has_agg h | None -> false
      in
      let b =
        if sp.group_by <> [] then Float.max 1.0 (sqrt b)
        else if any_agg then 1.0
        else b
      in
      if sp.distinct then Some (Float.max 1.0 (sqrt b)) else Some b
  and est_body (b : Plan.body_plan) : float option =
    match b with
    | Plan.Plan_select sp -> est_select sp
    | Plan.Plan_set { op; left; right; _ } -> (
      match (est_body left, est_body right) with
      | Some l, Some r -> (
        match op with
        | Plan.Union -> Some (l +. r)
        | Plan.Except -> Some l
        | Plan.Intersect -> Some (Float.min l r))
      | _ -> None)
  and est_plan (t : Plan.t) : float option =
    List.iter
      (fun (n, _, cp) ->
        match est_plan cp with
        | Some c -> Hashtbl.replace cte_card (lc n) c
        | None -> ())
      t.ctes;
    let c = est_body t.body in
    match (t.limit, c) with
    | Some l, Some c -> Some (Float.min (float_of_int (max 0 l)) c)
    | Some l, None -> Some (float_of_int (max 0 l))
    | None, c -> c
  in
  ignore (est_plan p);
  { Plan.est_rel; est_select }

(* --- join reorder ------------------------------------------------------------ *)

(* A reorderable region is a maximal tree of INNER/CROSS joins with ON or
   no conditions. Reordering permutes the region's leaves, which permutes the
   combined header layout, so it is guarded: no [*] projection, distinct
   aliases, every leaf schema known, every unqualified reference anywhere in
   the select appearing in at most one region leaf (first-match resolution
   then cannot change), every leaf cardinality estimable, and no subqueries
   inside the join conditions. Greedy left-deep construction from the
   smallest leaf, preferring connected joins; the result is kept only when
   its summed intermediate cardinality beats the original tree's. *)

exception Bail_reorder

type region_leaf = {
  rl_rel : Plan.rel;
  rl_aliases : SS.t;
  rl_cols : SS.t;
  rl_est : float;
}

let region_guard_names ctx (sp : Plan.select_plan) ~extra : SS.t =
  (* unqualified column names mentioned anywhere in the select (deep) *)
  let acc = ref SS.empty in
  let add_expr e =
    List.iter
      (fun (c : Ast.col_ref) ->
        if c.table = None then acc := SS.add (lc c.column) !acc)
      (Ast.deep_expr_columns e)
  in
  ignore ctx;
  List.iter
    (function Ast.Proj_expr (e, _) -> add_expr e | _ -> ())
    sp.projections;
  Option.iter add_expr sp.where;
  List.iter add_expr sp.group_by;
  Option.iter add_expr sp.having;
  List.iter add_expr extra;
  (match sp.source with
  | Some src -> ignore (Plan.fold_rel_exprs (fun () e -> add_expr e) () src)
  | None -> ());
  !acc

let reorder_select ctx (est : Plan.estimator) ~extra (sp : Plan.select_plan) :
    Plan.select_plan =
  match sp.source with
  | None -> sp
  | Some src ->
    let star = List.exists (function Ast.Proj_star -> true | _ -> false) sp.projections in
    let unq = region_guard_names ctx sp ~extra in
    (* region collection: leaves + ON conjuncts *)
    let rec collect r (leaves, conds) =
      match r with
      | Plan.Join { kind = Ast.Inner; cond = Ast.On e; left; right; _ } ->
        if List.exists has_subquery (Ast.conjuncts e) then raise Bail_reorder;
        collect right (collect left (leaves, Ast.conjuncts e @ conds))
      | Plan.Join { kind = Ast.Inner | Ast.Cross; cond = Ast.Cond_none; left; right; _ } ->
        collect right (collect left (leaves, conds))
      | leaf -> (leaf :: leaves, conds)
    in
    let rec go (r : Plan.rel) : Plan.rel =
      match r with
      | Plan.Scan _ | Plan.Derived _ -> r
      | Plan.Filter f -> Plan.Filter { f with input = go f.input }
      | Plan.Join { kind = Ast.Inner | Ast.Cross; cond = Ast.On _ | Ast.Cond_none; _ }
        -> (
        try reorder_region r with Bail_reorder -> descend r)
      | Plan.Join j -> Plan.Join { j with left = go j.left; right = go j.right }
    and descend r =
      match r with
      | Plan.Join j -> Plan.Join { j with left = descend_child j.left; right = descend_child j.right }
      | r -> go r
    and descend_child r =
      (* keep walking through the (bailed) region towards sub-structures *)
      match r with
      | Plan.Join { kind = Ast.Inner | Ast.Cross; cond = Ast.On _ | Ast.Cond_none; _ } ->
        descend r
      | r -> go r
    and reorder_region (root : Plan.rel) : Plan.rel =
      if star then raise Bail_reorder;
      let leaves_rels, conds = collect root ([], []) in
      let leaves_rels = List.rev leaves_rels in
      if List.length leaves_rels < 3 then raise Bail_reorder;
      (* original cost before touching anything *)
      let rec orig_cost r =
        match r with
        | Plan.Join { kind = Ast.Inner | Ast.Cross; cond = Ast.On _ | Ast.Cond_none; left; right; _ }
          ->
          (match est.Plan.est_rel r with
          | Some c -> c +. orig_cost left +. orig_cost right
          | None -> raise Bail_reorder)
        | _ -> 0.0
      in
      let original_total = orig_cost root in
      let leaves =
        List.map
          (fun r ->
            let infos = leaves_of_rel ctx r in
            let cols =
              List.fold_left
                (fun acc l ->
                  match l.lcols with
                  | None -> raise Bail_reorder
                  | Some cs -> List.fold_left (fun a c -> SS.add c a) acc cs)
                SS.empty infos
            in
            let aliases = SS.of_list (Plan.rel_aliases r) in
            let est_c =
              match est.Plan.est_rel r with Some c -> c | None -> raise Bail_reorder
            in
            (* recurse inside the leaf only after the guards pass *)
            { rl_rel = r; rl_aliases = aliases; rl_cols = cols; rl_est = est_c })
          leaves_rels
      in
      (* distinct aliases across the region *)
      let all_aliases = List.concat_map (fun l -> SS.elements l.rl_aliases) leaves in
      if List.length all_aliases <> List.length (List.sort_uniq compare all_aliases) then
        raise Bail_reorder;
      (* every guarded unqualified name lives in at most one leaf *)
      SS.iter
        (fun n ->
          let owners = List.filter (fun l -> SS.mem n l.rl_cols) leaves in
          if List.length owners > 1 then raise Bail_reorder)
        unq;
      (* classify conditions by the leaves they touch *)
      let leaf_arr = Array.of_list leaves in
      let n = Array.length leaf_arr in
      let touches (c : Ast.expr) : int list =
        let refs = Ast.expr_columns c in
        let idxs = ref [] in
        List.iter
          (fun (r : Ast.col_ref) ->
            let owner =
              match r.table with
              | Some t ->
                let t = lc t in
                let rec find i =
                  if i >= n then None
                  else if SS.mem t leaf_arr.(i).rl_aliases then Some i
                  else find (i + 1)
                in
                find 0
              | None ->
                let rec find i =
                  if i >= n then None
                  else if SS.mem (lc r.column) leaf_arr.(i).rl_cols then Some i
                  else find (i + 1)
                in
                find 0
            in
            match owner with
            | Some i -> if not (List.mem i !idxs) then idxs := i :: !idxs
            | None -> () (* outer reference *))
          refs;
        !idxs
      in
      let classified = List.map (fun c -> (c, touches c)) conds in
      (* single-leaf conditions become leaf filters; constants wrap the result *)
      let leaf_filters = Array.make n [] in
      let edges = ref [] and hoisted = ref [] in
      List.iter
        (fun (c, idxs) ->
          match idxs with
          | [] -> hoisted := c :: !hoisted
          | [ i ] -> leaf_filters.(i) <- c :: leaf_filters.(i)
          | _ -> edges := (c, SS.of_list (List.concat_map (fun i -> SS.elements leaf_arr.(i).rl_aliases) idxs)) :: !edges)
        classified;
      let leaf_rel i =
        let r = go leaf_arr.(i).rl_rel in
        match leaf_filters.(i) with
        | [] -> r
        | fs -> Plan.Filter { pred = and_all (List.rev fs); input = r }
      in
      (* greedy construction *)
      let covered = Array.make n false in
      let start = ref 0 in
      Array.iteri
        (fun i l -> if l.rl_est < leaf_arr.(!start).rl_est then start := i)
        leaf_arr;
      covered.(!start) <- true;
      let tree = ref (leaf_rel !start) in
      let covered_aliases = ref leaf_arr.(!start).rl_aliases in
      let remaining_edges = ref (List.rev !edges) in
      let total = ref 0.0 in
      for _ = 2 to n do
        let candidates = ref [] in
        for i = 0 to n - 1 do
          if not covered.(i) then begin
            let nxt_aliases = SS.union !covered_aliases leaf_arr.(i).rl_aliases in
            let applicable, _ =
              List.partition (fun (_, s) -> SS.subset s nxt_aliases) !remaining_edges
            in
            let connected =
              List.exists
                (fun (_, s) -> not (SS.is_empty (SS.inter s leaf_arr.(i).rl_aliases)))
                applicable
            in
            let cand_tree =
              if applicable = [] then
                Plan.Join
                  {
                    kind = Ast.Cross;
                    cond = Ast.Cond_none;
                    build_left = false;
                    left = !tree;
                    right = leaf_rel i;
                  }
              else
                Plan.Join
                  {
                    kind = Ast.Inner;
                    cond = Ast.On (and_all (List.map fst applicable));
                    build_left = false;
                    left = !tree;
                    right = leaf_rel i;
                  }
            in
            match est.Plan.est_rel cand_tree with
            | None -> raise Bail_reorder
            | Some c -> candidates := (c, connected, i, cand_tree, applicable) :: !candidates
          end
        done;
        let best =
          List.fold_left
            (fun best ((c, connected, i, _, _) as cand) ->
              match best with
              | None -> Some cand
              | Some (bc, bconn, bi, _, _) ->
                if
                  (connected && not bconn)
                  || (connected = bconn && (c < bc || (c = bc && i < bi)))
                then Some cand
                else best)
            None !candidates
        in
        match best with
        | None -> raise Bail_reorder
        | Some (c, _, i, cand_tree, applicable) ->
          covered.(i) <- true;
          covered_aliases := SS.union !covered_aliases leaf_arr.(i).rl_aliases;
          remaining_edges :=
            List.filter (fun e -> not (List.memq e applicable)) !remaining_edges;
          tree := cand_tree;
          total := !total +. c
      done;
      if !total >= original_total then raise Bail_reorder;
      let result = !tree in
      match !hoisted with
      | [] -> result
      | hs -> Plan.Filter { pred = and_all (List.rev hs); input = result }
    in
    { sp with source = Some (go src) }

(* --- build-side selection ---------------------------------------------------- *)

let rec choose_build_sides (est : Plan.estimator) (r : Plan.rel) : Plan.rel =
  match r with
  | Plan.Scan _ | Plan.Derived _ -> r
  | Plan.Filter f -> Plan.Filter { f with input = choose_build_sides est f.input }
  | Plan.Join j ->
    let left = choose_build_sides est j.left
    and right = choose_build_sides est j.right in
    let has_keys = j.kind <> Ast.Cross && fst (Plan.join_keys j.cond) <> [] in
    (* Flip to build-left only on a strictly smaller left estimate: missing
       estimates and ties keep [of_query]'s probe-left/build-right
       orientation, so without stats the plan (and the probe side's row
       order) stays on the historical path. *)
    let build_left =
      has_keys
      &&
      match (est.Plan.est_rel left, est.Plan.est_rel right) with
      | Some l, Some r -> l < r
      | _ -> false
    in
    Plan.Join { j with build_left; left; right }

(* --- physical rewrite driver -------------------------------------------------- *)

let rec physical_plan ctx est (p : Plan.t) : Plan.t =
  let ctes_rev, ctx_inner =
    List.fold_left
      (fun (acc, ctx) (name, cols, cbody) ->
        let cbody = physical_plan ctx est cbody in
        let out =
          if cols <> [] then Some (List.map lc cols) else output_names_of_plan cbody
        in
        ((name, cols, cbody) :: acc, { ctx with ctes = (lc name, out) :: ctx.ctes }))
      ([], ctx) p.ctes
  in
  let body = physical_body ctx_inner est ~extra:(List.map fst p.order_by) p.body in
  { p with ctes = List.rev ctes_rev; body }

and physical_body ctx est ~extra (b : Plan.body_plan) : Plan.body_plan =
  match b with
  | Plan.Plan_select sp -> Plan.Plan_select (physical_select ctx est ~extra sp)
  | Plan.Plan_set s ->
    Plan.Plan_set
      {
        s with
        left = physical_body ctx est ~extra:[] s.left;
        right = physical_body ctx est ~extra:[] s.right;
      }

and physical_select ctx est ~extra (sp : Plan.select_plan) : Plan.select_plan =
  match sp.source with
  | None -> sp
  | Some src ->
    let src = map_derived (physical_plan ctx est) src in
    let sp = reorder_select ctx est ~extra { sp with source = Some src } in
    (match sp.source with
    | None -> sp
    | Some src -> { sp with source = Some (choose_build_sides est src) })

(* --- public API --------------------------------------------------------------- *)

let rewrite ?metrics (p : Plan.t) : Plan.t =
  let ctx = { metrics; ctes = [] } in
  let p = rewrite_plan ctx p in
  let est = estimator ?metrics p in
  physical_plan ctx est p

let plan ?metrics (q : Ast.query) : Plan.t = rewrite ?metrics (Plan.of_query q)

(* When the query factors into a releasable core plus a post-processing
   suffix, the cheapest "plan" of all may be no execution: a release-store
   hit on the core answers the query from the stored noisy histogram. The
   planner itself cannot take that path (the store lives in the service
   layer), but EXPLAIN surfaces the shape so an operator can see which
   dashboard variants will coalesce onto one paid core. *)
let derivable_note (q : Ast.query) : string option =
  match Flex_sql.Factor.factor q with
  | None -> None
  | Some f when not (Flex_sql.Factor.trivial f) ->
    let sx = f.Flex_sql.Factor.suffix in
    let parts =
      List.filter_map Fun.id
        [
          (if sx.Flex_sql.Factor.having <> None then Some "having" else None);
          (if sx.Flex_sql.Factor.order_by <> [] then Some "order by" else None);
          (if sx.Flex_sql.Factor.limit <> None || sx.Flex_sql.Factor.offset <> None
           then Some "limit"
           else None);
          Some "projection";
        ]
    in
    Some
      (Printf.sprintf
         "derivable: %d-key/%d-aggregate core + post-processing suffix (%s) — \
          answerable from a stored release at zero budget"
         f.Flex_sql.Factor.n_group_keys f.Flex_sql.Factor.n_aggregates
         (String.concat ", " parts))
  | Some _ -> None

let explain ?metrics ?(estimates = true) (q : Ast.query) : string * string =
  let logical = Plan.of_query q in
  let optimized = rewrite ?metrics logical in
  (* [~estimates:false] still optimizes with the metrics (so the rendered
     shape is the executed shape) but suppresses the ~N annotations — they
     are seeded from exact private-table row counts, which an untrusted
     surface may not be allowed to echo. *)
  let render p =
    if estimates then Plan.render ~est:(estimator ?metrics p) p else Plan.to_string p
  in
  let logical_s =
    match derivable_note q with
    | None -> render logical
    | Some note -> render logical ^ "\n" ^ note
  in
  (logical_s, render optimized)
