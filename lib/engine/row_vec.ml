(* A growable array used as the executor's row container. Replaces the
   linked-list row plumbing: O(1) amortised append, O(1) indexing, and
   constant-factor-cheap slicing for LIMIT/OFFSET. Polymorphic so the same
   module carries rows ([Value.t array]) and auxiliary index vectors. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () : 'a t = { data = [||]; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Row_vec.get";
  v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let push v x =
  if v.len = Array.length v.data then begin
    let cap = if v.len = 0 then 16 else 2 * v.len in
    let data = Array.make cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let of_array a = { data = Array.copy a; len = Array.length a }

let wrap a = { data = a; len = Array.length a }

let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let map f v =
  if v.len = 0 then create ()
  else begin
    (* exact-size allocation; elements filled in order *)
    let data = Array.make v.len (f (Array.unsafe_get v.data 0)) in
    for i = 1 to v.len - 1 do
      Array.unsafe_set data i (f (Array.unsafe_get v.data i))
    done;
    { data; len = v.len }
  end

let filter p v =
  let out = create () in
  iter (fun x -> if p x then push out x) v;
  out

let fold_left f acc v =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) v;
  !acc

(* Exact-size concatenation of per-chunk results, used by the parallel
   operators to reassemble morsel outputs in chunk order. *)
let concat (parts : 'a t array) : 'a t =
  let total = Array.fold_left (fun acc p -> acc + p.len) 0 parts in
  if total = 0 then create ()
  else begin
    let first =
      let rec go i = if parts.(i).len > 0 then parts.(i).data.(0) else go (i + 1) in
      go 0
    in
    let data = Array.make total first in
    let off = ref 0 in
    Array.iter
      (fun p ->
        Array.blit p.data 0 data !off p.len;
        off := !off + p.len)
      parts;
    { data; len = total }
  end

let of_arrays (parts : 'a array array) : 'a t =
  concat (Array.map (fun a -> { data = a; len = Array.length a }) parts)

(* [slice v ~offset ~limit] clamps both bounds, so any combination of
   LIMIT/OFFSET (including out-of-range or negative) is safe — this subsumes
   the old non-tail-recursive [take]/[drop] on lists. *)
let slice v ~offset ~limit =
  let offset = max 0 offset in
  let start = min offset v.len in
  let avail = v.len - start in
  let n = match limit with None -> avail | Some l -> max 0 (min l avail) in
  { data = Array.sub v.data start n; len = n }
