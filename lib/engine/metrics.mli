(** Precomputed database metrics consumed by elastic sensitivity (paper §4):
    max frequencies [mf], value ranges [vr] (§3.7.2), the public-table
    registry (§3.6), primary-key constraints, and table row counts. In the
    paper's deployment these are collected offline with one SQL query per
    column and refreshed by database triggers. *)

type t

val create : unit -> t

val compute : Database.t -> t
(** Collect every metric for every column of every table. *)

val recompute_table : t -> Database.t -> string -> unit
(** Refresh one table's metrics after an update. *)

(** {2 Max frequency} *)

val compute_mf : Table.t -> string -> int
(** Frequency of the most frequent non-NULL value — the oracle equivalent of
    [SELECT COUNT(a) FROM T GROUP BY a ORDER BY count DESC LIMIT 1]. *)

val mf : t -> table:string -> column:string -> int option
val set_mf : t -> table:string -> column:string -> int -> unit

(** {2 Value range} *)

val compute_vr : Table.t -> string -> float option
(** [max - min] over a column's numeric values; [None] when there are none. *)

val vr : t -> table:string -> column:string -> float option
val set_vr : t -> table:string -> column:string -> float -> unit

(** {2 Constraints and bookkeeping} *)

val set_public : t -> string -> unit
val clear_public : t -> string -> unit
val is_public : t -> string -> bool
val public_tables : t -> string list

val set_primary_key : t -> table:string -> column:string -> unit
(** Declare schema-enforced uniqueness: the analysis may then use
    [mf_k = 1] at every distance for this column. *)

val is_primary_key : t -> table:string -> column:string -> bool
val set_row_count : t -> table:string -> int -> unit
val row_count : t -> table:string -> int option
val total_rows : t -> int

val columns : t -> table:string -> string list
(** Columns known for a table (from the collected metrics), letting the
    analysis run without a database connection. *)

val known_tables : t -> string list

val fingerprint : t -> string
(** Hex digest of the full metric set (deterministic: the serialised form is
    sorted). Analysis caches key on it so that any [mf]/[vr]/constraint
    change invalidates every dependent entry. *)

(** {2 Persistence} *)

val to_lines : t -> string list
val of_lines : string list -> t
val save : t -> string -> unit
val load : string -> t
