module Ast = Flex_sql.Ast

(** SQL aggregate functions over a group's values. NULLs are skipped (except
    by star-counts); empty inputs yield NULL (0 for counts). *)

exception Error of string

val compute :
  Ast.agg_func -> distinct:bool -> star:bool -> nrows:int -> Value.t list -> Value.t
(** [compute func ~distinct ~star ~nrows values]: [values] are the evaluated
    argument values over the group's rows ([nrows] of them); [star] marks
    [COUNT( * )]. *)

val distinct_values : Value.t list -> Value.t list
val non_null : Value.t list -> Value.t list

val compute_iter :
  Ast.agg_func ->
  distinct:bool ->
  star:bool ->
  nrows:int ->
  iter:((Value.t -> unit) -> unit) ->
  Value.t
(** Streaming [compute]: [iter f] applies [f] to the argument values in row
    order. Single-pass for the common non-distinct aggregates; equivalent to
    [compute] in results and errors. *)

val mergeable : Ast.agg_func -> distinct:bool -> star:bool -> bool
(** Whether the aggregate may be computed as per-chunk {!Partial} states and
    merged with a result identical to the sequential computation. COUNT, MIN,
    MAX unconditionally; SUM optimistically (exact for all-Int groups, and
    {!Partial.merge} reports failure otherwise); never for DISTINCT, [*],
    AVG/MEDIAN/STDDEV. *)

module Partial : sig
  (** Mergeable per-chunk aggregate state for parallel single-group
      aggregation. Each chunk [create]s a state, [add]s its values, and the
      caller [merge]s the chunk states in any order. *)

  type t

  val create : Ast.agg_func -> t
  (** @raise Error when the function is never {!mergeable}. *)

  val add : t -> Value.t -> unit

  val merge : t array -> Value.t option
  (** [None] when the merged result would not be bit-identical to the
      sequential one (a non-Int value reached SUM): recompute sequentially. *)
end
