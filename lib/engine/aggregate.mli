module Ast = Flex_sql.Ast

(** SQL aggregate functions over a group's values. NULLs are skipped (except
    by star-counts); empty inputs yield NULL (0 for counts). *)

exception Error of string

val compute :
  Ast.agg_func -> distinct:bool -> star:bool -> nrows:int -> Value.t list -> Value.t
(** [compute func ~distinct ~star ~nrows values]: [values] are the evaluated
    argument values over the group's rows ([nrows] of them); [star] marks
    [COUNT( * )]. *)

val distinct_values : Value.t list -> Value.t list
val non_null : Value.t list -> Value.t list

val compute_iter :
  Ast.agg_func ->
  distinct:bool ->
  star:bool ->
  nrows:int ->
  iter:((Value.t -> unit) -> unit) ->
  Value.t
(** Streaming [compute]: [iter f] applies [f] to the argument values in row
    order. Single-pass for the common non-distinct aggregates; equivalent to
    [compute] in results and errors. *)
