(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (plus the §2 study charts and the §3.4 worked example).

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only fig4  -- one section
     dune exec bench/main.exe -- --fast       -- smaller workloads

   Absolute values depend on the synthetic substrate; the quantities to
   compare against the paper are the *shapes*: who wins, by what order of
   magnitude, and where error decays with population size. Paper-reported
   values are printed inline as [paper: ...]. *)

module Rng = Flex_dp.Rng
module Sens = Flex_dp.Sens
module Smooth = Flex_dp.Smooth
module Value = Flex_engine.Value
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Flex = Flex_core.Flex
module Elastic = Flex_core.Elastic
module Errors = Flex_core.Errors
module W = Flex_workload
module E = Flex_workload.Experiments

(* ------------------------------------------------------------------ config *)

let fast = ref false
let only : string option ref = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--only" :: sec :: rest ->
      only := Some sec;
      parse rest
    | arg :: rest ->
      Fmt.epr "warning: ignoring argument %s@." arg;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

let section name = !only = None || !only = Some name

let header title =
  Fmt.pr "@.=== %s ===@." title

let pct x = Fmt.str "%.1f%%" x

(* ------------------------------------------------------- shared fixtures *)

let uber_sizes () =
  if !fast then W.Uber.small_sizes else W.Uber.default_sizes

let workload_count () = if !fast then 40 else 120
let error_runs () = if !fast then 2 else 3

let uber_ctx =
  lazy
    (let rng = Rng.create ~seed:20180704 () in
     let db, metrics = W.Uber.generate ~sizes:(uber_sizes ()) rng in
     (db, metrics))

(* delta = n^(-ln n) as in the paper, floored at 1e-8 (the paper's §3.4
   setting): our substitute databases are orders of magnitude smaller than
   the production warehouse, and n^(-ln n) at small n is vanishingly tiny,
   which would inflate the smooth-sensitivity bound 1/(e*beta) without
   corresponding to any realistic deployment. *)
let delta db_metrics =
  Float.max 1e-8 (Flex.delta_for_size (Metrics.total_rows db_metrics))

let workload =
  lazy
    (let _, metrics = Lazy.force uber_ctx in
     ignore metrics;
     let sizes = uber_sizes () in
     let rng = Rng.create ~seed:4242 () in
     W.Qgen.generate rng ~count:(workload_count ()) ~n_cities:sizes.W.Uber.cities
       ~n_drivers:sizes.W.Uber.drivers ~n_users:sizes.W.Uber.users)

let base_outcome =
  lazy
    (let db, metrics = Lazy.force uber_ctx in
     let rng = Rng.create ~seed:99 () in
     let options = Flex.options ~epsilon:0.1 ~delta:(delta metrics) () in
     E.run_workload ~runs:(error_runs ()) ~rng ~options ~db ~metrics
       (Lazy.force workload))

(* ------------------------------------------------------------- §2 study *)

let corpus_size () = if !fast then 2_000 else 10_000

let study () =
  header "Study (paper §2, questions 1-8): regenerated query-corpus statistics";
  let rng = Rng.create ~seed:81 () in
  let corpus = W.Corpus.generate rng (corpus_size ()) in
  let s = W.Corpus.stats corpus in
  let total = float_of_int s.W.Corpus.total in
  Fmt.pr "corpus: %d synthetic queries (sampled from the paper's marginals)@."
    s.W.Corpus.total;
  Fmt.pr "@.Q1 backends [paper: Vertica 6.36M, Postgres 1.49M, MySQL 94K, Hive 82K, Presto 40K, Other 29K]@.";
  List.iter (fun (b, n) -> Fmt.pr "  %-10s %6d (%s)@." b n (pct (100.0 *. float_of_int n /. total))) s.W.Corpus.backends;
  Fmt.pr "@.Q2 operators [paper: Select 100%%, Join 62.1%%, Union .57%%, Minus .06%%, Intersect .03%%]@.";
  Fmt.pr "  select     100%%@.";
  Fmt.pr "  join       %s@." (pct (100.0 *. float_of_int s.W.Corpus.join_queries /. total));
  Fmt.pr "  union      %s@." (pct (100.0 *. float_of_int s.W.Corpus.union_queries /. total));
  Fmt.pr "  minus      %s@." (pct (100.0 *. float_of_int s.W.Corpus.except_queries /. total));
  Fmt.pr "  intersect  %s@." (pct (100.0 *. float_of_int s.W.Corpus.intersect_queries /. total));
  Fmt.pr "@.Q3 joins per query [paper: long tail up to 95]@.";
  let tail_buckets = [ (0, 0); (1, 1); (2, 2); (3, 4); (5, 10); (11, 33); (34, 95) ] in
  List.iter
    (fun (lo, hi) ->
      let n =
        List.fold_left
          (fun acc (j, c) -> if j >= lo && j <= hi then acc + c else acc)
          0 s.W.Corpus.joins_per_query
      in
      Fmt.pr "  %2d-%-2d joins: %6d@." lo hi n)
    tail_buckets;
  let max_joins = List.fold_left (fun acc (j, _) -> max acc j) 0 s.W.Corpus.joins_per_query in
  Fmt.pr "  max joins in a query: %d@." max_joins;
  Fmt.pr "@.Q4 join types [paper: inner 69%%, left 29%%, cross 1%%, other 1%% | equijoin 76%%, compound 19%%, col-cmp 3%%, lit-cmp 2%% | self-join 28%%]@.";
  let total_joins =
    float_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 s.W.Corpus.join_kinds)
  in
  List.iter
    (fun (k, n) -> Fmt.pr "  kind %-6s %s@." k (pct (100.0 *. float_of_int n /. total_joins)))
    s.W.Corpus.join_kinds;
  List.iter
    (fun (c, n) ->
      Fmt.pr "  cond %-20s %s@." c (pct (100.0 *. float_of_int n /. total_joins)))
    s.W.Corpus.join_conditions;
  Fmt.pr "  self-join queries: %s of join queries@."
    (pct (100.0 *. float_of_int s.W.Corpus.self_join_queries /. float_of_int (max 1 s.W.Corpus.join_queries)));
  Fmt.pr "  equijoin-only join queries: %s [paper: 65.9%%]@."
    (pct (100.0 *. float_of_int s.W.Corpus.equijoin_only_queries /. float_of_int (max 1 s.W.Corpus.join_queries)));
  Fmt.pr "@.Q5 statistical vs raw [paper: statistical 34%%]@.";
  Fmt.pr "  statistical %s@." (pct (100.0 *. float_of_int s.W.Corpus.statistical_queries /. total));
  Fmt.pr "@.Q6 aggregation functions [paper: count 51%%, sum 29%%, avg 8%%, max 6%%, min 5%%, median .3%%, stddev .1%%]@.";
  let total_aggs =
    float_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 s.W.Corpus.aggregate_uses)
  in
  List.iter
    (fun (a, n) -> Fmt.pr "  %-8s %s@." a (pct (100.0 *. float_of_int n /. total_aggs)))
    s.W.Corpus.aggregate_uses;
  Fmt.pr "@.Q7 query size (AST clauses) [paper: most <100, tail to thousands]@.";
  List.iter (fun (b, n) -> Fmt.pr "  size %-8s %6d@." b n) (List.sort compare s.W.Corpus.size_buckets);
  Fmt.pr "@.Q8 result sizes [paper: rows to 10M, columns to 500]@.";
  List.iter (fun (b, n) -> Fmt.pr "  rows %-10s %6d@." b n) (List.sort compare s.W.Corpus.rows_buckets);
  List.iter (fun (b, n) -> Fmt.pr "  cols %-10s %6d@." b n) (List.sort compare s.W.Corpus.cols_buckets);
  Fmt.pr "  parse failures: %d@." s.W.Corpus.parse_failures;
  (* join relationships (the middle pie of the paper's Q4 chart) come from
     the executable workload, whose generator knows each join's key shape *)
  Fmt.pr "@.Q4 join relationships (from the executable workload) [paper: 1-to-many 64%%, 1-to-1 26%%, m-to-n 10%%]@.";
  let joins =
    List.filter_map (fun (q : W.Qgen.t) -> q.W.Qgen.relationship) (Lazy.force workload)
  in
  let total_rel = float_of_int (max 1 (List.length joins)) in
  List.iter
    (fun rel ->
      let n = List.length (List.filter (( = ) rel) joins) in
      Fmt.pr "  %-14s %s@." (W.Qgen.relationship_name rel)
        (pct (100.0 *. float_of_int n /. total_rel)))
    [ W.Qgen.One_to_many; W.Qgen.One_to_one; W.Qgen.Many_to_many ]

(* --------------------------------------------------- §5.1 success rate *)

(* Catalog for the synthetic corpus vocabulary. *)
let corpus_catalog =
  let columns = Some ("key" :: List.init 8 (fun i -> Fmt.str "c%d" (i + 1))) in
  {
    Elastic.columns = (fun _ -> columns);
    mf = (fun { Elastic.column; _ } -> if column = "key" then Some 30 else Some 100);
    vr = (fun _ -> Some 1000.0);
    is_public = (fun _ -> false);
    is_unique = (fun _ -> false);
    table_rows = (fun _ -> Some 1000);
    cross_joins = false;
    total_rows = 1_000_000;
  }

let success_rate () =
  header "Success rate (paper §5.1): elastic-sensitivity analysis over the statistical corpus";
  let rng = Rng.create ~seed:82 () in
  let corpus = W.Corpus.generate rng (corpus_size ()) in
  let counting =
    List.filter
      (fun (q : W.Corpus.qdesc) ->
        match Flex_sql.Features.analyze_sql q.W.Corpus.sql with
        | Ok f -> f.Flex_sql.Features.is_statistical
        | Error _ -> false)
      corpus
  in
  let total = List.length counting in
  let ok = ref 0 and parse = ref 0 and unsupported = ref 0 and other = ref 0 in
  let reasons = Hashtbl.create 16 in
  List.iter
    (fun (q : W.Corpus.qdesc) ->
      match Elastic.analyze_sql corpus_catalog q.W.Corpus.sql with
      | Ok _ -> incr ok
      | Error r -> (
        let label = Fmt.str "%a" Errors.pp_reason r in
        let label =
          if String.length label > 48 then String.sub label 0 48 else label
        in
        Hashtbl.replace reasons label
          (1 + Option.value ~default:0 (Hashtbl.find_opt reasons label));
        match Errors.bucket_of r with
        | Errors.Parse_bucket -> incr parse
        | Errors.Unsupported_bucket -> incr unsupported
        | Errors.Other_bucket -> incr other))
    counting;
  let p n = pct (100.0 *. float_of_int n /. float_of_int (max 1 total)) in
  Fmt.pr "statistical queries analysed: %d@." total;
  Fmt.pr "  success      %s  [paper: 76.0%%]@." (p !ok);
  Fmt.pr "  unsupported  %s  [paper: 14.1%%]@." (p !unsupported);
  Fmt.pr "  parse error  %s  [paper: 6.6%%; ours is 0 by construction -- the corpus is emitted by our own printer]@."
    (p !parse);
  Fmt.pr "  other        %s  [paper: 3.2%%]@." (p !other);
  Fmt.pr "top rejection reasons:@.";
  Hashtbl.fold (fun k v acc -> (v, k) :: acc) reasons []
  |> List.sort compare |> List.rev
  |> List.iteri (fun i (n, k) -> if i < 6 then Fmt.pr "  %5d  %s@." n k)

(* ------------------------------------------------------------- Table 1 *)

let table1 () =
  header "Table 1: mechanism capability matrix (probed, not hardcoded)";
  let _, metrics = Lazy.force uber_ctx in
  let cat = Elastic.catalog_of_metrics metrics in
  let parse sql = Result.get_ok (Flex_sql.Parser.parse sql) in
  let one_one = parse "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id" in
  let one_many = parse "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id" in
  let many_many = parse "SELECT COUNT(*) FROM trips a JOIN trips b ON a.rider_id = b.rider_id" in
  let elastic q = Result.is_ok (Elastic.analyze cat q) in
  let restricted q = Result.is_ok (Flex_baselines.Restricted.global_sensitivity cat q) in
  let global q = Result.is_ok (Flex_baselines.Global_sens.global_sensitivity q) in
  let row name compat o1 o2 o3 =
    let mark b = if b then "yes" else " - " in
    Fmt.pr "  %-22s %-12s %-9s %-10s %s@." name compat (mark o1) (mark o2) (mark o3)
  in
  Fmt.pr "  %-22s %-12s %-9s %-10s %s@." "mechanism" "db-compat" "1-to-1" "1-to-many"
    "many-to-many";
  row "PINQ (restricted join)" "no" true false false;
  row "wPINQ" "no (runtime)" true true true;
  row "Restricted sensitivity" "yes" (restricted one_one) (restricted one_many)
    (restricted many_many);
  row "DJoin" "no (crypto)" true false false;
  row "Global sensitivity" "yes" (global one_one) (global one_many) (global many_many);
  row "Elastic (this work)" "yes" (elastic one_one) (elastic one_many) (elastic many_many);
  Fmt.pr "  [paper Table 1: PINQ 1-1 only; wPINQ all but custom runtime; restricted 1-1 and 1-n;\n   DJoin 1-1 only; elastic sensitivity all three with any database]@."

(* ------------------------------------------------------------- Table 2 *)

let now () = Unix.gettimeofday ()

let bechamel_estimate name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:Measure.[| run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let est = ref nan in
  Hashtbl.iter
    (fun _ o -> match Analyze.OLS.estimates o with Some [ e ] -> est := e | _ -> ())
    ols;
  !est

let table2 () =
  header "Table 2: FLEX overhead (per-query seconds: original execution vs analysis vs perturbation)";
  let db, metrics = Lazy.force uber_ctx in
  let options = Flex.options ~epsilon:0.1 ~delta:(delta metrics) () in
  let queries = Lazy.force workload in
  let rng = Rng.create ~seed:7 () in
  let sample = List.filteri (fun i _ -> i < 40) queries in
  let exec_times = ref [] and analysis_times = ref [] and perturb_times = ref [] in
  List.iter
    (fun (q : W.Qgen.t) ->
      (match Flex_sql.Parser.parse q.W.Qgen.sql with
      | Error _ -> ()
      | Ok ast ->
        let t0 = now () in
        let result = try Some (Executor.run db ast) with _ -> None in
        let t1 = now () in
        (match Elastic.analyze (Elastic.catalog_of_metrics metrics) ast with
        | Ok analysis ->
          let t2 = now () in
          analysis_times := (t2 -. t1) :: !analysis_times;
          (match result with
          | Some r ->
            exec_times := (t1 -. t0) :: !exec_times;
            let beta = Smooth.beta ~epsilon:options.Flex.epsilon ~delta:options.Flex.delta in
            let t3 = now () in
            List.iter
              (fun spec ->
                match spec with
                | Elastic.Aggregate_col { sens; _ } ->
                  let smooth = Smooth.of_sens ~beta ~n:analysis.Elastic.database_rows sens in
                  let scale = Smooth.noise_scale ~epsilon:options.Flex.epsilon smooth in
                  List.iter
                    (fun row ->
                      Array.iter
                        (fun v ->
                          match Value.to_float v with
                          | Some f ->
                            ignore (f +. Flex_dp.Laplace.sample rng ~scale)
                          | None -> ())
                        row)
                    r.Executor.rows
                | Elastic.Group_key_col _ -> ())
              analysis.Elastic.columns;
            let t4 = now () in
            perturb_times := (t4 -. t3) :: !perturb_times
          | None -> ())
        | Error _ -> ())))
    sample;
  let report name times paper =
    match times with
    | [] -> Fmt.pr "  %-28s (no samples)@." name
    | ts ->
      let n = float_of_int (List.length ts) in
      let avg = List.fold_left ( +. ) 0.0 ts /. n in
      let mx = List.fold_left Float.max 0.0 ts in
      Fmt.pr "  %-28s avg %10.6f s   max %10.6f s   %s@." name avg mx paper
  in
  report "original query (engine)" !exec_times "[paper: avg 42.4, max 3452 -- production warehouse]";
  report "elastic sensitivity analysis" !analysis_times "[paper: avg 0.007, max 1.2]";
  report "output perturbation" !perturb_times "[paper: avg 0.005, max 2.4]";
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
  let overhead =
    100.0 *. (avg !analysis_times +. avg !perturb_times) /. Float.max 1e-12 (avg !exec_times)
  in
  Fmt.pr "  relative DP overhead: %.3f%% of execution time [paper: 0.03%% of 42.4 s]@." overhead;
  (* Bechamel microbenchmarks of the two FLEX stages *)
  let sql = "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id" in
  let cat = Elastic.catalog_of_metrics metrics in
  let analysis_ns = bechamel_estimate "analysis" (fun () -> Elastic.analyze_sql cat sql) in
  let rng2 = Rng.create ~seed:3 () in
  let laplace_ns =
    bechamel_estimate "laplace" (fun () -> Flex_dp.Laplace.sample rng2 ~scale:10.0)
  in
  Fmt.pr "  bechamel: analysis of a 1-join query  %10.0f ns/run@." analysis_ns;
  Fmt.pr "  bechamel: one laplace draw            %10.0f ns/run@." laplace_ns

(* ---------------------------------------------------------- Figure 3/4 *)

let fig3 () =
  header "Figure 3: distribution of query population sizes";
  let outcome = Lazy.force base_outcome in
  let pops = List.map (fun (m : E.measurement) -> m.E.population) outcome.E.measurements in
  List.iter
    (fun (label, n) -> Fmt.pr "  %-8s %5d queries@." label n)
    (E.population_buckets pops);
  Fmt.pr "  [paper: <100 46.7%%, 100-1K 12.3%%, 1K-10K 15.7%%, >10K 25.3%%]@."

let fig4 () =
  header "Figure 4: median error vs population size (eps=0.1, delta=n^-ln n)";
  let outcome = Lazy.force base_outcome in
  let split p =
    List.filter (fun (m : E.measurement) -> p m.E.query.W.Qgen.has_join) outcome.E.measurements
  in
  let print_series name ms =
    Fmt.pr "@.  (%s) population -> median error %%@." name;
    (* bucket by decade of population size, print median of medians *)
    let decades = [ (1, 10); (10, 100); (100, 1000); (1000, 10_000); (10_000, 100_000); (100_000, 10_000_000) ] in
    List.iter
      (fun (lo, hi) ->
        let errs =
          List.filter_map
            (fun (m : E.measurement) ->
              if m.E.population >= lo && m.E.population < hi then Some m.E.median_error
              else None)
            ms
        in
        match E.median errs with
        | Some med ->
          Fmt.pr "    [%7d, %8d): median %12.4f%%  (%d queries)@." lo hi med
            (List.length errs)
        | None -> Fmt.pr "    [%7d, %8d): (no queries)@." lo hi)
      decades;
    let high_utility =
      List.length (List.filter (fun (m : E.measurement) -> m.E.median_error < 10.0) ms)
    in
    Fmt.pr "    queries under 10%% error: %d / %d@." high_utility (List.length ms)
  in
  print_series "no joins" (split not);
  print_series "with joins" (split (fun b -> b));
  (* secondary series without the smooth-sensitivity inflation, whose
     magnitudes are the ones comparable to the paper's reported errors *)
  let db, metrics = Lazy.force uber_ctx in
  let rng = Rng.create ~seed:98 () in
  let options =
    Flex.options ~epsilon:0.1 ~delta:(delta metrics) ~smoothing:`Elastic_k0 ()
  in
  let k0 =
    E.run_workload ~runs:(error_runs ()) ~rng ~options ~db ~metrics
      (Lazy.force workload)
  in
  let split_k0 p =
    List.filter (fun (m : E.measurement) -> p m.E.query.W.Qgen.has_join) k0.E.measurements
  in
  Fmt.pr "@.  -- same workload with smoothing disabled (ES at k=0; cf. paper magnitudes) --@.";
  print_series "no joins, k0" (split_k0 not);
  print_series "with joins, k0" (split_k0 (fun b -> b));
  Fmt.pr "@.  rejected queries: %d@." (List.length (Lazy.force base_outcome).E.rejected);
  Fmt.pr "  [paper: error decreases with population for both series; majority of queries <10%% error;\n   join series shifted up by a cluster of many-to-many joins]@."

(* --------------------------------------------------------- Figure 5 ----- *)

let fig5 () =
  header "Table 3 / Figure 5: TPC-H counting queries (eps=0.1)";
  let rng = Rng.create ~seed:55 () in
  let scale = if !fast then 0.002 else 0.004 in
  let db, metrics = W.Tpch.generate ~scale rng in
  Fmt.pr "  substrate: TPC-H at scale %.3f (%d rows total)@." scale
    (Metrics.total_rows metrics);
  let options = Flex.options ~epsilon:0.1 ~delta:(delta metrics) () in
  let ok, bad = E.run_tpch ~runs:(error_runs ()) ~rng ~options ~db ~metrics () in
  Fmt.pr "  %-4s %-5s %-12s %-14s %s@." "id" "joins" "population" "median err %" "description";
  List.iter
    (fun (m : E.tpch_measurement) ->
      Fmt.pr "  %-4s %-5d %-12d %-14.4f %s@." m.E.tq.W.Tpch.name m.E.tq.W.Tpch.joins
        m.E.population m.E.median_error m.E.tq.W.Tpch.description)
    ok;
  List.iter
    (fun (name, r) -> Fmt.pr "  %-4s REJECTED: %s@." name (Errors.to_string r))
    bad;
  Fmt.pr "  [paper Fig 5: Q1 err 0.00014%% @ 1.48M pop; Q4 0.0017%% @ 10.5K; Q13 0.0099%% @ 2K;\n   Q16 4.4%% @ 4; Q21 2.0%% @ 10 -- error decreases with population]@."

(* ---------------------------------------------------------- Figure 6 ----- *)

let fig6 () =
  header "Figure 6: effect of epsilon on median error (population >= 100)";
  let db, metrics = Lazy.force uber_ctx in
  let queries = Lazy.force workload in
  (* restrict to less-sensitive queries, as §5.2.2 does *)
  let big_pop =
    List.filter
      (fun (q : W.Qgen.t) -> E.population_of db q.W.Qgen.population_sql >= 100)
      queries
  in
  Fmt.pr "  queries with population >= 100: %d of %d@." (List.length big_pop)
    (List.length queries);
  Fmt.pr "  %-10s" "bin";
  List.iter (fun e -> Fmt.pr " eps=%-6g" e) [ 0.1; 1.0; 10.0 ];
  Fmt.pr "@.";
  let per_eps =
    List.map
      (fun epsilon ->
        let rng = Rng.create ~seed:60 () in
        let options = Flex.options ~epsilon ~delta:(delta metrics) () in
        let outcome = E.run_workload ~runs:(error_runs ()) ~rng ~options ~db ~metrics big_pop in
        E.error_bins (List.map (fun (m : E.measurement) -> m.E.median_error) outcome.E.measurements))
      [ 0.1; 1.0; 10.0 ]
  in
  List.iter
    (fun label ->
      Fmt.pr "  %-10s" label;
      List.iter
        (fun bins -> Fmt.pr " %-9s" (pct (List.assoc label bins)))
        per_eps;
      Fmt.pr "@.")
    E.error_bin_labels;
  Fmt.pr "  [paper: eps=0.1 -> 49.8%% of queries <1%% error; eps=10 -> 66.2%%; 'More' shrinks with eps]@."

(* ---------------------------------------------------------- Figure 7 ----- *)

let fig7 () =
  header "Figure 7: impact of the public-table optimisation (eps=0.1)";
  let db, metrics = Lazy.force uber_ctx in
  let queries = Lazy.force workload in
  let bins ~public_optimization =
    let rng = Rng.create ~seed:70 () in
    let options =
      Flex.options ~epsilon:0.1 ~delta:(delta metrics) ~public_optimization ()
    in
    let outcome = E.run_workload ~runs:(error_runs ()) ~rng ~options ~db ~metrics queries in
    E.error_bins (List.map (fun (m : E.measurement) -> m.E.median_error) outcome.E.measurements)
  in
  let with_opt = bins ~public_optimization:true in
  let without = bins ~public_optimization:false in
  Fmt.pr "  %-10s %-12s %s@." "bin" "with-opt" "without-opt";
  List.iter
    (fun label ->
      Fmt.pr "  %-10s %-12s %s@." label
        (pct (List.assoc label with_opt))
        (pct (List.assoc label without)))
    E.error_bin_labels;
  Fmt.pr "  [paper: optimisation moves queries from the >100%% bin into <1%%: 28.5%% -> 49.8%% <1%%]@."

(* ----------------------------------------------------------- Table 4 ----- *)

let table4 () =
  header "Table 4: categorisation of high-error queries (median error > 100%)";
  let outcome = Lazy.force base_outcome in
  let n, shares = E.high_error_categories outcome ~threshold:100.0 in
  Fmt.pr "  high-error queries: %d of %d@." n (List.length outcome.E.measurements);
  List.iter (fun (cat, share) -> Fmt.pr "  %-32s %s@." cat (pct share)) shares;
  Fmt.pr "  [paper: individual filters 8%%, low-population 72%%, many-to-many joins 20%%]@."

(* ----------------------------------------------------------- Table 5 ----- *)

let table5 () =
  header "Table 5: FLEX vs wPINQ on the six representative queries (eps=0.1)";
  let db, metrics = Lazy.force uber_ctx in
  let runs = if !fast then 9 else 25 in
  let rows smoothing =
    let rng = Rng.create ~seed:50 () in
    let options = Flex.options ~epsilon:0.1 ~delta:(delta metrics) ~smoothing () in
    E.run_comparison ~runs ~rng ~options ~db ~metrics ()
  in
  let smooth_rows = rows `Smooth and k0_rows = rows `Elastic_k0 in
  Fmt.pr "  %-4s %-12s %-14s %-16s %-16s %s@." "id" "median-pop" "wPINQ err %"
    "FLEX err %" "FLEX-k0 err %" "description";
  List.iter2
    (fun (c : E.comparison) (c0 : E.comparison) ->
      let desc = c.E.program.W.Representative.description in
      let desc = if String.length desc > 48 then String.sub desc 0 48 ^ "..." else desc in
      Fmt.pr "  %-4s %-12.1f %-14.2f %-16.2f %-16.2f %s@."
        c.E.program.W.Representative.name c.E.median_population c.E.wpinq_error
        c.E.flex_error c0.E.flex_error desc)
    smooth_rows k0_rows;
  Fmt.pr "  [paper: FLEX beats wPINQ on P1/P2/P3/P6 (up to 90%% lower error), loses on P4/P5;\n   P5 is inherently sensitive (population 1): both mechanisms have very high error]@."

(* ----------------------------------------------------- §3.4 triangles ----- *)

let triangles () =
  header "Worked example (paper §3.4): counting triangles, mf = 65, eps = 0.7, delta = 1e-8";
  let rng = Rng.create ~seed:34 () in
  let db, metrics = W.Graph.generate rng in
  Fmt.pr "  graph: %d edges; mf(source) = %d, mf(dest) = %d@."
    (Option.value ~default:0 (Metrics.row_count metrics ~table:"edges"))
    (Option.value ~default:0 (Metrics.mf metrics ~table:"edges" ~column:"source"))
    (Option.value ~default:0 (Metrics.mf metrics ~table:"edges" ~column:"dest"));
  let cat = Elastic.catalog_of_metrics metrics in
  (match
     Elastic.analyze_sql cat
       "SELECT COUNT(*) FROM edges e1 JOIN edges e2 ON e1.dest = e2.source"
   with
  | Ok a ->
    Fmt.pr "  first self-join stability: %s  [paper: 131 + 2k]@."
      (Sens.to_string a.Elastic.stability)
  | Error r -> Fmt.pr "  REJECTED: %s@." (Errors.to_string r));
  (match Elastic.analyze_sql cat W.Graph.triangle_sql with
  | Ok a ->
    let s = a.Elastic.stability in
    Fmt.pr "  full query elastic sensitivity: %s@." (Sens.to_string s);
    Fmt.pr "    [Fig 1(c) propagation gives 3k^2 + 393k + 12871; the paper's own example\n     text substitutes base-table mf and reports 2k^2 + 199k + 8711]@.";
    let beta = Smooth.beta ~epsilon:0.7 ~delta:1e-8 in
    let r = Smooth.of_sens ~beta ~n:(Metrics.total_rows metrics) s in
    Fmt.pr "  beta = %.6f; smooth S = %.2f at k = %d; Laplace scale 2S/eps = %.1f@."
      beta r.Smooth.smooth_bound r.Smooth.argmax_k
      (Smooth.noise_scale ~epsilon:0.7 r);
    Fmt.pr "    [paper: S = 8896.95 at k = 19, scale = 17793.9/0.7]@.";
    (* run the mechanism end to end *)
    let options = Flex.options ~epsilon:0.7 ~delta:1e-8 () in
    let rng = Rng.create ~seed:35 () in
    (match Flex.run_sql ~rng ~options ~db ~metrics W.Graph.triangle_sql with
    | Ok release ->
      let truth =
        match release.Flex.true_result.rows with
        | [ [| v |] ] -> Value.to_string v
        | _ -> "?"
      in
      let noisy =
        match release.Flex.noisy.rows with
        | [ [| v |] ] -> Value.to_string v
        | _ -> "?"
      in
      Fmt.pr "  end-to-end: true triangle count (ordered form) = %s, DP release = %s@." truth noisy
    | Error r -> Fmt.pr "  mechanism failed: %s@." (Errors.to_string r))
  | Error r -> Fmt.pr "  REJECTED: %s@." (Errors.to_string r))

(* ------------------------------------------------------- ablation ----- *)

(* Smooth bounds for representative queries under every combination of the
   design choices DESIGN.md calls out: the §3.6 public-table optimisation,
   the schema-uniqueness optimisation, and the smoothing mode. *)
let ablation () =
  header "Ablation: smooth sensitivity bound under each design choice (eps=0.1, delta=1e-8)";
  let _, metrics = Lazy.force uber_ctx in
  let queries =
    [
      ("no-join count", "SELECT COUNT(*) FROM trips");
      ("public join", "SELECT COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id");
      ("1-to-many join", "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id");
      ("1-to-1 join", "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id");
      ("m-to-n self join", "SELECT COUNT(*) FROM trips a JOIN trips b ON a.rider_id = b.rider_id");
    ]
  in
  let bound ~public_optimization ~unique_optimization ~smoothing sql =
    let options =
      Flex.options ~epsilon:0.1 ~delta:1e-8 ~public_optimization
        ~unique_optimization ~smoothing ()
    in
    match Flex.analyze_only ~options ~metrics sql with
    | Ok (_, (_, _, smooth) :: _) -> smooth.Smooth.smooth_bound
    | _ -> nan
  in
  Fmt.pr "  %-18s %12s %12s %12s %12s %12s@." "query" "all-on" "no-public"
    "no-unique" "none" "k0";
  List.iter
    (fun (name, sql) ->
      Fmt.pr "  %-18s %12.1f %12.1f %12.1f %12.1f %12.1f@." name
        (bound ~public_optimization:true ~unique_optimization:true ~smoothing:`Smooth sql)
        (bound ~public_optimization:false ~unique_optimization:true ~smoothing:`Smooth sql)
        (bound ~public_optimization:true ~unique_optimization:false ~smoothing:`Smooth sql)
        (bound ~public_optimization:false ~unique_optimization:false ~smoothing:`Smooth sql)
        (bound ~public_optimization:true ~unique_optimization:true ~smoothing:`Elastic_k0 sql))
    queries;
  Fmt.pr "  [columns: optimisations toggled under full smoothing; k0 = elastic sensitivity at\n   distance 0 without smoothing. Lower is better; all-on must be the smallest smooth bound]@."

(* --------------------------------------------------- mechanisms ----- *)

(* Noise scale each mechanism needs per query class (epsilon = 0.1): a
   quantitative companion to Table 1. Every mechanism is run through its own
   sensitivity computation; "--" marks rejection. *)
let mechanisms () =
  header "Mechanism comparison: per-query Laplace noise scale at eps = 0.1 (-- = unsupported)";
  let _, metrics = Lazy.force uber_ctx in
  let cat = Elastic.catalog_of_metrics metrics in
  let parse sql = Result.get_ok (Flex_sql.Parser.parse sql) in
  let epsilon = 0.1 in
  let queries =
    [
      ("no-join count", "SELECT COUNT(*) FROM trips");
      ("1-to-1 join", "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id");
      ("1-to-many join", "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id");
      ("m-to-n self join", "SELECT COUNT(*) FROM trips a JOIN trips b ON a.rider_id = b.rider_id");
    ]
  in
  let fmt_scale = function
    | None -> "      --"
    | Some s -> Fmt.str "%8.1f" s
  in
  Fmt.pr "  %-18s %10s %12s %12s %12s@." "query" "global" "restricted" "elastic"
    "elastic-k0";
  List.iter
    (fun (name, sql) ->
      let q = parse sql in
      let global =
        match Flex_baselines.Global_sens.global_sensitivity q with
        | Ok gs -> Some (gs /. epsilon)
        | Error _ -> None
      in
      let restricted =
        match Flex_baselines.Restricted.global_sensitivity cat q with
        | Ok gs -> Some (gs /. epsilon)
        | Error _ -> None
      in
      let elastic smoothing =
        let options = Flex.options ~epsilon ~delta:1e-8 ~smoothing () in
        match Flex.analyze_only ~options ~metrics sql with
        | Ok (_, (_, _, smooth) :: _) ->
          Some (Smooth.noise_scale ~epsilon smooth)
        | _ -> None
      in
      Fmt.pr "  %-18s %10s %12s %12s %12s@." name (fmt_scale global)
        (fmt_scale restricted)
        (fmt_scale (elastic `Smooth))
        (fmt_scale (elastic `Elastic_k0)))
    queries;
  Fmt.pr "  [global sensitivity cannot bound joins; restricted sensitivity rejects many-to-many;\n   elastic sensitivity supports all three join relationships (paper Tables 1 and 5 context)]@."

(* --------------------------------------------------------------- main ----- *)

let sections =
  [
    ("study", study);
    ("success", success_rate);
    ("table1", table1);
    ("table2", table2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("table4", table4);
    ("table5", table5);
    ("triangles", triangles);
    ("ablation", ablation);
    ("mechanisms", mechanisms);
  ]

let () =
  let t0 = now () in
  List.iter (fun (name, run) -> if section name then run ()) sections;
  Fmt.pr "@.done in %.1f s@." (now () -. t0)
