(* Differentially private TPC-H (paper §5.2.1): generate the benchmark
   tables, mark region/nation/part public, and answer the five counting
   queries of Table 3 with FLEX.

     dune exec examples/tpch_private.exe *)

module Value = Flex_engine.Value
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng
module Flex = Flex_core.Flex
module Tpch = Flex_workload.Tpch
module E = Flex_workload.Experiments

let () =
  let rng = Rng.create ~seed:17 () in
  Fmt.pr "generating TPC-H data (scale 0.004)...@.";
  let db, metrics = Tpch.generate ~scale:0.004 rng in
  Fmt.pr "%a@." Flex_engine.Database.pp db;
  Fmt.pr "public tables: %s@.@."
    (String.concat ", " (Metrics.public_tables metrics));
  let options = Flex.options ~epsilon:0.1 ~delta:1e-8 () in
  List.iter
    (fun (q : Tpch.query) ->
      Fmt.pr "--- %s (%s, %d joins) ---@." q.Tpch.name q.Tpch.description q.Tpch.joins;
      match Flex.run_sql ~rng ~options ~db ~metrics q.Tpch.sql with
      | Error r -> Fmt.pr "rejected: %s@.@." (Flex_core.Errors.to_string r)
      | Ok release ->
        let population = E.population_of db (Tpch.population_sql q.Tpch.name) in
        Fmt.pr "population %d; %d output rows; sensitivities:@." population
          (List.length release.Flex.noisy.rows);
        List.iter
          (fun c ->
            Fmt.pr "  %s: ES = %s, smooth bound %.1f, noise scale %.1f@." c.Flex.name
              (Flex_dp.Sens.to_string c.Flex.elastic)
              c.Flex.smooth.Flex_dp.Smooth.smooth_bound c.Flex.noise_scale)
          release.Flex.column_releases;
        (* first rows, true vs noisy *)
        let shown = ref 0 in
        List.iter2
          (fun t n ->
            if !shown < 3 then begin
              incr shown;
              Fmt.pr "  true %-40s noisy %s@."
                (String.concat ", " (Array.to_list (Array.map Value.to_string t)))
                (String.concat ", " (Array.to_list (Array.map Value.to_string n)))
            end)
          release.Flex.true_result.rows
          (* noisy may contain extra enumerated bins; align on the prefix *)
          (List.filteri
             (fun i _ -> i < List.length release.Flex.true_result.rows)
             release.Flex.noisy.rows);
        Fmt.pr "@.")
    Tpch.queries
