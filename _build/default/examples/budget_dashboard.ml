(* Privacy-budget strategies from paper §4.3: basic composition, the strong
   composition theorem, and the sparse vector technique built on FLEX's
   elastic-sensitivity bounds.

     dune exec examples/budget_dashboard.exe *)

module Rng = Flex_dp.Rng
module Budget = Flex_dp.Budget
module Sparse_vector = Flex_dp.Sparse_vector
module Flex = Flex_core.Flex
module Uber = Flex_workload.Uber

let () =
  let rng = Rng.create ~seed:2 () in
  let db, metrics = Uber.generate ~sizes:Uber.small_sizes rng in

  (* --- composition: what do 50 queries at eps=0.05 cost? ------------------ *)
  Fmt.pr "=== composition accounting ===@.";
  let b = Budget.create ~epsilon:10.0 ~delta:1e-4 in
  for _ = 1 to 50 do
    Budget.charge b ~label:"dashboard tile" ~epsilon:0.05 ~delta:1e-9
  done;
  let eb, db_ = Budget.spent_basic b in
  let es, ds = Budget.spent_strong b in
  Fmt.pr "50 queries at eps = 0.05 each:@.";
  Fmt.pr "  basic composition:  eps = %.3f, delta = %.2e@." eb db_;
  Fmt.pr "  strong composition: eps = %.3f, delta = %.2e@.@." es ds;

  (* --- sparse vector: only pay for interesting answers -------------------- *)
  Fmt.pr "=== sparse vector over FLEX sensitivities ===@.";
  Fmt.pr "release city trip-counts only when they noisily exceed 150:@.";
  let options = Flex.options ~epsilon:1.0 ~delta:1e-8 () in
  let sv = Sparse_vector.create ~max_answers:3 rng ~epsilon:1.0 ~threshold:150.0 in
  let city_count city_id =
    let sql = Fmt.str "SELECT COUNT(*) FROM trips WHERE city_id = %d" city_id in
    match Flex.run_sql ~rng ~options ~db ~metrics sql with
    | Ok release -> (
      let sens =
        (List.hd release.Flex.column_releases).Flex.smooth.Flex_dp.Smooth.smooth_bound
      in
      match release.Flex.true_result.rows with
      | [ [| v |] ] -> Some (Option.value ~default:0.0 (Flex_engine.Value.to_float v), sens)
      | _ -> None)
    | Error _ -> None
  in
  let stop = ref false in
  for city = 1 to 12 do
    if not !stop then
      match city_count city with
      | None -> ()
      | Some (truth, sensitivity) -> (
        match Sparse_vector.query sv ~sensitivity truth with
        | Sparse_vector.Below -> Fmt.pr "  city %2d: below threshold (not released)@." city
        | Sparse_vector.Above v -> Fmt.pr "  city %2d: released noisy count %.1f@." city v
        | Sparse_vector.Halted ->
          Fmt.pr "  city %2d: answer quota exhausted, stopping@." city;
          stop := true)
  done;
  Fmt.pr "sparse vector epsilon spent: %.2f (independent of the number of probes)@.@."
    (Sparse_vector.epsilon_spent sv);

  (* --- per-query budget refusal ------------------------------------------- *)
  Fmt.pr "=== hard budget limit ===@.";
  let tight = Budget.create ~epsilon:1.0 ~delta:1e-6 in
  let options = Flex.options ~epsilon:0.4 ~delta:1e-8 () in
  List.iteri
    (fun i sql ->
      match Flex.run_sql ~budget:tight ~rng ~options ~db ~metrics sql with
      | Ok _ -> Fmt.pr "  query %d answered; %a@." (i + 1) Budget.pp tight
      | Error r -> Fmt.pr "  query %d rejected: %s@." (i + 1) (Flex_core.Errors.to_string r)
      | exception Budget.Exhausted _ ->
        Fmt.pr "  query %d refused: budget exhausted@." (i + 1))
    [
      "SELECT COUNT(*) FROM trips";
      "SELECT COUNT(*) FROM drivers";
      "SELECT COUNT(*) FROM users";
    ]

(* --- propose-test-release (appended) -----------------------------------------
   PTR (paper §6) releases with noise scaled to a *proposed* sensitivity when
   the elastic-sensitivity function certifies the database is far from any
   one where the proposal would be unsound. *)
let () =
  Fmt.pr "@.=== propose-test-release on elastic sensitivity ===@.";
  let rng = Rng.create ~seed:3 () in
  let db, metrics = Uber.generate ~sizes:Uber.small_sizes rng in
  let options = Flex.options ~epsilon:1.0 ~delta:1e-6 () in
  let try_ptr label sql proposed =
    match
      Flex.run_ptr ~rng ~options ~db ~metrics ~proposed_sensitivity:proposed sql
    with
    | Ok { outcome = Flex_dp.Ptr.Released v; true_value; distance_bound; _ } ->
      Fmt.pr "  %-34s proposed %6.1f: released %.1f (true %.0f; distance bound %d)@."
        label proposed v true_value distance_bound
    | Ok { outcome = Flex_dp.Ptr.Refused; distance_bound; _ } ->
      Fmt.pr "  %-34s proposed %6.1f: refused (distance bound %d)@." label proposed
        distance_bound
    | Error r -> Fmt.pr "  %-34s rejected: %s@." label (Flex_core.Errors.to_string r)
  in
  try_ptr "no-join count, generous proposal" "SELECT COUNT(*) FROM trips" 5.0;
  try_ptr "join count, undershooting" 
    "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id" 1.0;
  try_ptr "join count, generous"
    "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id" 2000.0
