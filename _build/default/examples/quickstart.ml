(* Quickstart: enforce differential privacy for a SQL query in a few lines.

     dune exec examples/quickstart.exe

   The flow mirrors the FLEX architecture (paper Fig 2): build (or connect
   to) a database, collect the max-frequency metrics once, then answer SQL
   queries with (epsilon, delta)-differential privacy. *)

module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Flex = Flex_core.Flex
module Rng = Flex_dp.Rng

let () =
  (* 1. A database: two tables of sensitive data. *)
  let trips =
    Table.create ~name:"trips" ~columns:[ "id"; "driver_id"; "city" ]
      [
        [| Value.Int 1; Value.Int 1; Value.String "sf" |];
        [| Value.Int 2; Value.Int 1; Value.String "sf" |];
        [| Value.Int 3; Value.Int 2; Value.String "nyc" |];
        [| Value.Int 4; Value.Int 3; Value.String "sf" |];
        [| Value.Int 5; Value.Int 3; Value.String "nyc" |];
        [| Value.Int 6; Value.Int 3; Value.String "sf" |];
      ]
  in
  let drivers =
    Table.create ~name:"drivers" ~columns:[ "id"; "status" ]
      [
        [| Value.Int 1; Value.String "active" |];
        [| Value.Int 2; Value.String "active" |];
        [| Value.Int 3; Value.String "inactive" |];
      ]
  in
  let db = Database.of_tables [ trips; drivers ] in

  (* 2. Collect metrics once (mf, vr, row counts); declare constraints. *)
  let metrics = Metrics.compute db in
  Metrics.set_primary_key metrics ~table:"drivers" ~column:"id";

  (* 3. Answer queries with differential privacy. *)
  let rng = Rng.create () in
  let options = Flex.options ~epsilon:1.0 ~delta:1e-6 () in
  let ask sql =
    match Flex.run_sql ~rng ~options ~db ~metrics sql with
    | Ok release ->
      let cell =
        match release.Flex.noisy.rows with
        | [ [| v |] ] -> Value.to_string v
        | _ -> "<multiple rows>"
      in
      let bound = (List.hd release.Flex.column_releases).Flex.smooth in
      Fmt.pr "%s@.  -> %s   (smooth sensitivity bound %.2f, Laplace scale %.1f)@.@."
        sql cell bound.Flex_dp.Smooth.smooth_bound
        (List.hd release.Flex.column_releases).Flex.noise_scale
    | Error reason ->
      Fmt.pr "%s@.  -> rejected: %s@.@." sql (Flex_core.Errors.to_string reason)
  in
  ask "SELECT COUNT(*) FROM trips";
  ask "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
       WHERE d.status = 'active'";
  (* raw data is out of scope for differential privacy: rejected *)
  ask "SELECT id, city FROM trips"
