examples/budget_dashboard.mli:
