examples/tpch_private.mli:
