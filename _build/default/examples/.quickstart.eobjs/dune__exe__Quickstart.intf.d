examples/quickstart.mli:
