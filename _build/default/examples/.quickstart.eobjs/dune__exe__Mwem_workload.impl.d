examples/mwem_workload.ml: Array Flex_dp Flex_engine Flex_workload Float Fmt List
