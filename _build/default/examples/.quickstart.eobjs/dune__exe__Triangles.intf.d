examples/triangles.mli:
