examples/quickstart.ml: Flex_core Flex_dp Flex_engine Fmt List
