examples/tpch_private.ml: Array Flex_core Flex_dp Flex_engine Flex_workload Fmt List String
