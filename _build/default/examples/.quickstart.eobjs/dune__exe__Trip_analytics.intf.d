examples/trip_analytics.mli:
