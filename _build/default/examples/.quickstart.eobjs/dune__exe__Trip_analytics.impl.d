examples/trip_analytics.ml: Array Flex_core Flex_dp Flex_engine Flex_workload Fmt List String
