examples/budget_dashboard.ml: Flex_core Flex_dp Flex_engine Flex_workload Fmt List Option
