examples/mwem_workload.mli:
