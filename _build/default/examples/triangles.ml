(* The paper's worked example (§3.4): elastic sensitivity of the
   triangle-counting query over a graph with max-frequency metric 65.

     dune exec examples/triangles.exe *)

module Rng = Flex_dp.Rng
module Sens = Flex_dp.Sens
module Smooth = Flex_dp.Smooth
module Metrics = Flex_engine.Metrics
module Elastic = Flex_core.Elastic
module Flex = Flex_core.Flex
module Graph = Flex_workload.Graph

let () =
  let rng = Rng.create ~seed:65 () in
  let db, metrics = Graph.generate rng in
  Fmt.pr "edges table: %d rows; mf(source) = %d, mf(dest) = %d@.@."
    (Option.value ~default:0 (Metrics.row_count metrics ~table:"edges"))
    (Option.value ~default:0 (Metrics.mf metrics ~table:"edges" ~column:"source"))
    (Option.value ~default:0 (Metrics.mf metrics ~table:"edges" ~column:"dest"));
  Fmt.pr "query:@.  %s@.@." Graph.triangle_sql;
  let cat = Elastic.catalog_of_metrics metrics in

  (* step 1: the inner self join e1 x e2 *)
  (match
     Elastic.analyze_sql cat
       "SELECT COUNT(*) FROM edges e1 JOIN edges e2 ON e1.dest = e2.source"
   with
  | Ok a ->
    Fmt.pr "elastic stability of (e1 JOIN e2): %s@." (Sens.to_string a.Elastic.stability);
    Fmt.pr "  = mf_k(dest)*S(e2) + mf_k(source)*S(e1) + S(e1)*S(e2)  (self-join case, Fig 1b)@.@."
  | Error r -> Fmt.pr "rejected: %s@." (Flex_core.Errors.to_string r));

  (* step 2: the full query *)
  match Elastic.analyze_sql cat Graph.triangle_sql with
  | Error r -> Fmt.pr "rejected: %s@." (Flex_core.Errors.to_string r)
  | Ok a ->
    let s = a.Elastic.stability in
    Fmt.pr "elastic sensitivity of the full query: %s@." (Sens.to_string s);
    Fmt.pr "  (the paper's example text reports 2k^2 + 199k + 8711 by plugging base-table@.";
    Fmt.pr "   mf values in directly; Fig 1(c) propagates mf_k through the first join,@.";
    Fmt.pr "   giving the polynomial above; see EXPERIMENTS.md)@.@.";
    List.iter
      (fun k -> Fmt.pr "  ES(%d) = %g@." k (Sens.eval s k))
      [ 0; 1; 19; 44; 100 ];
    (* step 3: smoothing with eps = 0.7, delta = 1e-8 *)
    let epsilon = 0.7 and delta = 1e-8 in
    let beta = Smooth.beta ~epsilon ~delta in
    let r = Smooth.of_sens ~beta ~n:(Metrics.total_rows metrics) s in
    Fmt.pr "@.beta = eps / 2 ln(2/delta) = %.6f@." beta;
    Fmt.pr "S = max_k e^(-beta k) ES(k) = %.2f at k = %d (scanned %d values, Theorem 3 cutoff)@."
      r.Smooth.smooth_bound r.Smooth.argmax_k r.Smooth.scanned;
    Fmt.pr "Laplace noise scale 2S/eps = %.1f@.@." (Smooth.noise_scale ~epsilon r);
    (* step 4: the mechanism end to end *)
    let options = Flex.options ~epsilon ~delta () in
    let rng = Rng.create ~seed:7 () in
    (match Flex.run_sql ~rng ~options ~db ~metrics Graph.triangle_sql with
    | Ok release ->
      let get rows = match rows with [ [| v |] ] -> Flex_engine.Value.to_string v | _ -> "?" in
      Fmt.pr "true count: %s;  differentially private release: %s@."
        (get release.Flex.true_result.rows) (get release.Flex.noisy.rows)
    | Error r -> Fmt.pr "mechanism failed: %s@." (Flex_core.Errors.to_string r))
