(* Budget-efficient workload answering (paper §4.3): instead of paying
   epsilon for every query, build a differentially private synthetic
   histogram with MWEM and answer the whole workload from it.

     dune exec examples/mwem_workload.exe *)

module Rng = Flex_dp.Rng
module Mwem = Flex_dp.Mwem
module Laplace = Flex_dp.Laplace
module Value = Flex_engine.Value
module Executor = Flex_engine.Executor
module Uber = Flex_workload.Uber

let () =
  let rng = Rng.create ~seed:8 () in
  let db, _metrics = Uber.generate rng in

  (* The data: trips per city — a histogram over the public city domain
     (FLEX's bin enumeration guarantees the domain is known). *)
  let result =
    Executor.run_sql_exn db
      "SELECT c.id, COUNT(*) AS n FROM trips t JOIN cities c ON t.city_id = c.id \
       GROUP BY c.id ORDER BY c.id"
  in
  let domain_size = Array.length Uber.city_names in
  let data = Array.make domain_size 0.0 in
  List.iter
    (fun row ->
      match (Value.to_int row.(0), Value.to_float row.(1)) with
      | Some id, Some n when id >= 1 && id <= domain_size -> data.(id - 1) <- n
      | _ -> ())
    result.rows;
  Fmt.pr "domain: %d cities; total trips %g@.@." domain_size
    (Array.fold_left ( +. ) 0.0 data);

  (* The workload: every city's count, plus coarse regional ranges. *)
  let workload =
    List.init domain_size (fun i ->
        Mwem.subset_query ~label:Uber.city_names.(i) ~domain_size [ i ])
    @ [
        Mwem.range_query ~label:"first-quarter" ~domain_size ~lo:0 ~hi:(domain_size / 4);
        Mwem.range_query ~label:"first-half" ~domain_size ~lo:0 ~hi:(domain_size / 2);
        Mwem.range_query ~label:"second-half" ~domain_size
          ~lo:((domain_size / 2) + 1)
          ~hi:(domain_size - 1);
      ]
  in
  let epsilon = 0.05 in
  Fmt.pr "workload: %d queries; total budget epsilon = %g@.@."
    (List.length workload) epsilon;

  (* Strategy A: split epsilon across all queries with plain Laplace. *)
  let eps_each = epsilon /. float_of_int (List.length workload) in
  let naive_err =
    let total = ref 0.0 in
    List.iter
      (fun q ->
        let truth = Mwem.answer data q in
        let noisy = truth +. Laplace.sample rng ~scale:(1.0 /. eps_each) in
        total := !total +. Float.abs (noisy -. truth))
      workload;
    !total /. float_of_int (List.length workload)
  in

  (* Strategy B: MWEM with 15 measured queries. *)
  let r = Mwem.run rng ~epsilon ~rounds:15 ~data workload in
  let mwem_err = Mwem.workload_error ~data ~synthetic:r.Mwem.synthetic workload in
  Fmt.pr "mean absolute workload error:@.";
  Fmt.pr "  per-query Laplace (eps/%d each)   %10.1f@." (List.length workload) naive_err;
  Fmt.pr "  MWEM (15 measurements)            %10.1f@.@." mwem_err;
  Fmt.pr "queries MWEM chose to measure:@.";
  List.iter (fun (q, v) -> Fmt.pr "  %-16s -> %.1f@." q.Mwem.label v) r.Mwem.measured;
  Fmt.pr "@.sample answers from the synthetic histogram:@.";
  List.iteri
    (fun i q ->
      if i < 6 then
        Fmt.pr "  %-16s true %8.1f   synthetic %8.1f@." q.Mwem.label
          (Mwem.answer data q)
          (Mwem.answer r.Mwem.synthetic q))
    workload
