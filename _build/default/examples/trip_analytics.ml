(* A realistic analyst session over the Uber-like schema: several business
   questions answered under a shared privacy budget, with histogram bin
   enumeration, the public-table optimisation, and typed rejections.

     dune exec examples/trip_analytics.exe *)

module Value = Flex_engine.Value
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng
module Budget = Flex_dp.Budget
module Flex = Flex_core.Flex
module Uber = Flex_workload.Uber

let () =
  let rng = Rng.create ~seed:1 () in
  Fmt.pr "generating the ride-sharing database...@.";
  let db, metrics = Uber.generate rng in
  Fmt.pr "%a; cities is public@.@." Flex_engine.Database.pp db;

  (* a per-analyst budget: total epsilon 3.0 *)
  let budget = Budget.create ~epsilon:3.0 ~delta:1e-5 in
  let options = Flex.options ~epsilon:0.5 ~delta:1e-8 () in

  let ask question sql =
    Fmt.pr "Q: %s@.   %s@." question sql;
    (match Flex.run_sql ~budget ~rng ~options ~db ~metrics sql with
    | Ok release ->
      let rows = release.Flex.noisy.rows in
      let n = List.length rows in
      if n = 1 then
        Fmt.pr "   -> %s@."
          (String.concat ", "
             (Array.to_list (Array.map Value.to_string (List.hd rows))))
      else begin
        Fmt.pr "   -> %d rows%s; first three:@." n
          (if release.Flex.bins_enumerated then " (all public bins enumerated)" else "");
        List.iteri
          (fun i row ->
            if i < 3 then
              Fmt.pr "      %s@."
                (String.concat ", " (Array.to_list (Array.map Value.to_string row))))
          rows
      end;
      List.iter
        (fun c ->
          Fmt.pr "   [%s: elastic sensitivity %s, smooth bound %.1f]@." c.Flex.name
            (Flex_dp.Sens.to_string c.Flex.elastic)
            c.Flex.smooth.Flex_dp.Smooth.smooth_bound)
        release.Flex.column_releases
    | Error r -> Fmt.pr "   -> rejected: %s@." (Flex_core.Errors.to_string r)
    | exception Budget.Exhausted { remaining_epsilon; _ } ->
      Fmt.pr "   -> refused: privacy budget exhausted (%.2f epsilon left)@."
        remaining_epsilon);
    Fmt.pr "   %a@.@." Budget.pp budget
  in

  ask "How many trips were completed this year?"
    "SELECT COUNT(*) FROM trips WHERE status = 'completed'";
  ask "Trips per city (cities are public, so every bin is released)"
    "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
     GROUP BY c.name";
  ask "How many active drivers completed a trip in March?"
    "SELECT COUNT(DISTINCT t.driver_id) FROM trips t JOIN drivers d ON \
     t.driver_id = d.id WHERE d.status = 'active' AND t.requested_at >= \
     '2016-03-01' AND t.requested_at < '2016-04-01'";
  ask "Total fares by trip status"
    "SELECT t.status, SUM(t.fare) FROM trips t GROUP BY t.status";
  ask "Raw trip rows (must be refused: differential privacy covers statistics only)"
    "SELECT id, driver_id, fare FROM trips LIMIT 10";
  ask "Riders who both completed and cancelled (many-to-many self join: high noise)"
    "SELECT COUNT(*) FROM trips a JOIN trips b ON a.rider_id = b.rider_id \
     WHERE a.status = 'completed' AND b.status = 'cancelled'";
  ask "One more scalar count (watch the budget run down)"
    "SELECT COUNT(*) FROM trips WHERE fare > 50";
  ask "And another (this one exhausts the budget)"
    "SELECT COUNT(*) FROM trips WHERE fare > 80"
