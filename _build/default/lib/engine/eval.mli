module Ast = Flex_sql.Ast

(** Scalar operations with SQL three-valued logic. Pure value-level
    semantics; column resolution and subqueries live in {!Executor}. *)

exception Error of string

val is_truthy : Value.t -> bool
(** WHERE/HAVING keep a row only when the predicate is exactly TRUE. *)

val and3 : Value.t -> Value.t -> Value.t
(** Kleene AND: [false AND NULL = false], [true AND NULL = NULL]. *)

val or3 : Value.t -> Value.t -> Value.t
val not3 : Value.t -> Value.t

val binop : Ast.binop -> Value.t -> Value.t -> Value.t
(** Arithmetic (Int/Int stays Int; division by zero yields NULL),
    comparisons (NULL-propagating), boolean connectives, [||] concat. *)

val unop : Ast.unop -> Value.t -> Value.t

val like : Value.t -> Value.t -> Value.t
(** SQL LIKE: [%] matches any sequence, [_] any single character. *)

val like_match : pattern:string -> string -> bool

val cast : Value.t -> string -> Value.t
(** CAST to int/float/varchar/bool/date families; failures yield NULL. *)

val func : string -> Value.t list -> Value.t
(** Scalar function library: lower, upper, length, trim, abs, round, floor,
    ceil, coalesce, nullif, concat, substr, year, month, sqrt, greatest,
    least. @raise Error on unknown functions. *)
