(* Minimal CSV reading/writing for loading tables from disk (used by the
   CLI). Values are sniffed: integers, floats, booleans, empty = NULL,
   otherwise strings. Quoted fields with embedded commas are supported. *)

let parse_line line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
        flush ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then flush () (* unterminated quote: accept what we have *)
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let sniff_value s =
  if s = "" then Value.Null
  else
    match int_of_string_opt s with
    | Some i -> Value.Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> (
        match String.lowercase_ascii s with
        | "true" -> Value.Bool true
        | "false" -> Value.Bool false
        | _ -> Value.String s))

let load_table ~name path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match input_line ic with
        | line -> parse_line line
        | exception End_of_file -> invalid_arg ("empty CSV file: " ^ path)
      in
      let rec read acc =
        match input_line ic with
        | line ->
          if String.trim line = "" then read acc
          else read (Array.of_list (List.map sniff_value (parse_line line)) :: acc)
        | exception End_of_file -> List.rev acc
      in
      Table.create ~name ~columns:header (read []))

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let save_result (r : Executor.result_set) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," (List.map escape_field r.columns) ^ "\n");
      List.iter
        (fun row ->
          let cells =
            Array.to_list (Array.map (fun v -> escape_field (Value.to_csv_string v)) row)
          in
          output_string oc (String.concat "," cells ^ "\n"))
        r.rows)
