lib/engine/executor.ml: Aggregate Array Database Eval Flex_sql Fmt Hashtbl List Option Stdlib String Table Value
