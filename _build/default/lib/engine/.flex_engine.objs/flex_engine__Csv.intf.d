lib/engine/csv.mli: Executor Table Value
