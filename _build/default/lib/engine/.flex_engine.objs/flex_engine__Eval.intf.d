lib/engine/eval.mli: Flex_sql Value
