lib/engine/metrics_live.mli: Database Metrics Value
