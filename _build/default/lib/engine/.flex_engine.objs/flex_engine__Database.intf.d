lib/engine/database.mli: Fmt Table
