lib/engine/value.mli: Fmt
