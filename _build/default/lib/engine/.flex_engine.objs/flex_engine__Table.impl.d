lib/engine/table.ml: Array Fmt List String Value
