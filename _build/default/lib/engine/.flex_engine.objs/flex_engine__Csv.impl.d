lib/engine/csv.ml: Array Buffer Executor Fun List String Table Value
