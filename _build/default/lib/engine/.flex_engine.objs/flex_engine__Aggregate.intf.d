lib/engine/aggregate.mli: Flex_sql Value
