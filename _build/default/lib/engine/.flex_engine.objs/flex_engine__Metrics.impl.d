lib/engine/metrics.ml: Array Database Fmt Fun Hashtbl List Option String Table Value
