lib/engine/value.ml: Fmt Hashtbl Stdlib
