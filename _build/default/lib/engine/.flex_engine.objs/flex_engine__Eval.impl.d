lib/engine/eval.ml: Flex_sql Float Fmt Hashtbl List String Value
