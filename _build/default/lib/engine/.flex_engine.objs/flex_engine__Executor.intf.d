lib/engine/executor.mli: Database Flex_sql Value
