lib/engine/metrics.mli: Database Table
