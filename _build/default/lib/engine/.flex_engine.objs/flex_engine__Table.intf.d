lib/engine/table.mli: Fmt Value
