lib/engine/metrics_live.ml: Array Database Hashtbl List Metrics Option String Table Value
