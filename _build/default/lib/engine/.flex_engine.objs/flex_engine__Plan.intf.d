lib/engine/plan.mli: Flex_sql Fmt
