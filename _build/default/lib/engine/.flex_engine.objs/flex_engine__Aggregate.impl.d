lib/engine/aggregate.ml: Array Flex_sql Fmt Hashtbl List Value
