lib/engine/database.ml: Fmt Hashtbl List String Table
