lib/engine/plan.ml: Flex_sql Fmt List Option String
