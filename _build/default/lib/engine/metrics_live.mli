(** Incrementally maintained metrics — the trigger logic the paper (§4)
    prescribes for update-heavy environments: per-column value counts keep
    [mf] and [vr] exact under inserts, deletes and updates without
    rescanning the table. *)

type t

val create : unit -> t
val register : t -> table:string -> columns:string list -> unit

val of_database : Database.t -> t
(** Bootstrap the counters from existing data. *)

val insert_row : t -> table:string -> Value.t array -> unit
val delete_row : t -> table:string -> Value.t array -> unit
val update_row : t -> table:string -> before:Value.t array -> after:Value.t array -> unit

val mf : t -> table:string -> column:string -> int
val vr : t -> table:string -> column:string -> float option
val row_count : t -> table:string -> int

val snapshot : ?base:Metrics.t -> t -> Metrics.t
(** Export to the static representation FLEX consumes; [base] supplies the
    public-table and primary-key declarations to keep. *)
