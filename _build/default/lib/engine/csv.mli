(** Minimal CSV reading/writing for loading tables from disk. Values are
    sniffed: integers, floats, booleans, empty = NULL, otherwise strings;
    quoted fields with embedded commas and escaped quotes are supported. *)

val load_table : name:string -> string -> Table.t
(** Load a CSV file whose first line is the header. *)

val save_result : Executor.result_set -> string -> unit

val parse_line : string -> string list
val sniff_value : string -> Value.t
val escape_field : string -> string
