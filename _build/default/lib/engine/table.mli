(** An immutable named relation. Column names are case-insensitive (stored
    lowercase). *)

type t

exception Schema_error of string

val create : name:string -> columns:string list -> Value.t array list -> t
(** @raise Schema_error when a row's arity does not match the columns. *)

val name : t -> string
val columns : t -> string array
val rows : t -> Value.t array array
val row_count : t -> int
val column_index : t -> string -> int option

val column_values : t -> string -> Value.t array
(** @raise Schema_error on an unknown column. *)

val with_row : t -> int -> Value.t array -> t
(** Functional single-row replacement (used by the neighbouring-database
    oracle in tests). *)

val pp : t Fmt.t
