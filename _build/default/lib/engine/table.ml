(* An immutable named relation. Row arrays must match the column count. *)

type t = { name : string; columns : string array; rows : Value.t array array }

exception Schema_error of string

let create ~name ~columns rows =
  let columns = Array.of_list (List.map String.lowercase_ascii columns) in
  let ncols = Array.length columns in
  let rows = Array.of_list rows in
  Array.iteri
    (fun i row ->
      if Array.length row <> ncols then
        raise
          (Schema_error
             (Fmt.str "table %s: row %d has %d values, expected %d" name i
                (Array.length row) ncols)))
    rows;
  { name; columns; rows }

let name t = t.name
let columns t = t.columns
let rows t = t.rows
let row_count t = Array.length t.rows

let column_index t col =
  let col = String.lowercase_ascii col in
  let n = Array.length t.columns in
  let rec go i = if i >= n then None else if t.columns.(i) = col then Some i else go (i + 1) in
  go 0

let column_values t col =
  match column_index t col with
  | None -> raise (Schema_error (Fmt.str "table %s has no column %s" t.name col))
  | Some i -> Array.map (fun row -> row.(i)) t.rows

(* Replace one row (used by the local-sensitivity brute-force oracle in
   tests); returns a new table. *)
let with_row t i row =
  if i < 0 || i >= Array.length t.rows then invalid_arg "Table.with_row";
  if Array.length row <> Array.length t.columns then
    raise (Schema_error (Fmt.str "table %s: replacement row arity mismatch" t.name));
  let rows = Array.copy t.rows in
  rows.(i) <- row;
  { t with rows }

let pp ppf t =
  Fmt.pf ppf "%s(%s) [%d rows]" t.name
    (String.concat ", " (Array.to_list t.columns))
    (Array.length t.rows)
