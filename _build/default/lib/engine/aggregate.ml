module Ast = Flex_sql.Ast

(* SQL aggregate functions over a group's values. NULLs are skipped, matching
   standard semantics; a star-count counts rows including NULLs. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let distinct_values values =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    values

let non_null values = List.filter (fun v -> not (Value.is_null v)) values

let floats_of name values =
  List.map
    (fun v ->
      match Value.to_float v with
      | Some f -> f
      | None -> error "%s over non-numeric value %a" name Value.pp v)
    values

let sum_value values =
  let all_int = List.for_all (function Value.Int _ -> true | _ -> false) values in
  if all_int then
    Value.Int
      (List.fold_left
         (fun acc v -> match v with Value.Int i -> acc + i | _ -> acc)
         0 values)
  else Value.Float (List.fold_left ( +. ) 0.0 (floats_of "SUM" values))

let median_value values =
  let fs = List.sort compare (floats_of "MEDIAN" values) in
  let a = Array.of_list fs in
  let n = Array.length a in
  if n = 0 then Value.Null
  else if n mod 2 = 1 then Value.Float a.(n / 2)
  else Value.Float ((a.((n / 2) - 1) +. a.(n / 2)) /. 2.0)

let stddev_value values =
  let fs = floats_of "STDDEV" values in
  let n = List.length fs in
  if n < 2 then Value.Null
  else begin
    let mean = List.fold_left ( +. ) 0.0 fs /. float_of_int n in
    let ss = List.fold_left (fun acc f -> acc +. ((f -. mean) *. (f -. mean))) 0.0 fs in
    Value.Float (sqrt (ss /. float_of_int (n - 1)))
  end

(* [compute func ~distinct ~star ~nrows values]: [values] are the evaluated
   argument values over the group's rows (ignored when [star]). *)
let compute (func : Ast.agg_func) ~distinct ~star ~nrows values =
  match func with
  | Ast.Count ->
    if star then Value.Int nrows
    else begin
      let vs = non_null values in
      let vs = if distinct then distinct_values vs else vs in
      Value.Int (List.length vs)
    end
  | Ast.Sum -> (
    let vs = non_null values in
    let vs = if distinct then distinct_values vs else vs in
    match vs with [] -> Value.Null | vs -> sum_value vs)
  | Ast.Avg -> (
    let vs = non_null values in
    let vs = if distinct then distinct_values vs else vs in
    match vs with
    | [] -> Value.Null
    | vs ->
      let fs = floats_of "AVG" vs in
      Value.Float (List.fold_left ( +. ) 0.0 fs /. float_of_int (List.length fs)))
  | Ast.Min -> (
    match non_null values with
    | [] -> Value.Null
    | v :: vs -> List.fold_left (fun acc v -> if Value.compare v acc < 0 then v else acc) v vs)
  | Ast.Max -> (
    match non_null values with
    | [] -> Value.Null
    | v :: vs -> List.fold_left (fun acc v -> if Value.compare v acc > 0 then v else acc) v vs)
  | Ast.Median -> median_value (non_null values)
  | Ast.Stddev -> stddev_value (non_null values)
