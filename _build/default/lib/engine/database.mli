(** A database: a set of named tables with case-insensitive lookup. *)

type t

exception Unknown_table of string

val create : unit -> t
val of_tables : Table.t list -> t
val add : t -> Table.t -> unit
val find_opt : t -> string -> Table.t option

val find : t -> string -> Table.t
(** @raise Unknown_table *)

val mem : t -> string -> bool
val table_names : t -> string list
val total_rows : t -> int

val copy : t -> t
(** Shallow copy: shares table values, independent table map. *)

val pp : t Fmt.t
