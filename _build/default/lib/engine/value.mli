(** SQL values with NULL. Dates and timestamps are carried as ISO-8601
    strings, which order correctly under lexicographic comparison. *)

type t = Null | Bool of bool | Int of int | Float of float | String of string

val is_null : t -> bool

val compare : t -> t -> int
(** Total order used by ORDER BY, MIN/MAX and grouping: NULL sorts first,
    Int and Float compare numerically across types. *)

val equal : t -> t -> bool
(** [equal (Int 2) (Float 2.0)] is [true]. *)

val sql_equal : t -> t -> bool option
(** SQL equality: [None] (unknown) when either side is NULL. *)

val sql_compare : t -> t -> int option

val to_float : t -> float option
val to_int : t -> int option
val pp : t Fmt.t
val to_string : t -> string

val to_csv_string : t -> string
(** Literal-style rendering: strings unquoted, NULL empty. *)

val hash : t -> int
(** Consistent with {!equal} (Int/Float coercion included). *)
