(* Incrementally maintained metrics. The paper (§4) notes that the mf metric
   "must be recomputed when the most frequent join attribute changes" and
   suggests database triggers for update-heavy environments; this module is
   that trigger logic: it keeps full per-column value counts so inserts and
   deletes update mf and vr in O(columns) per row, without rescanning. *)

type column_state = {
  counts : (Value.t, int) Hashtbl.t;
  mutable mf : int; (* max frequency over non-NULL values *)
  mutable lo : float; (* numeric extremes; infinities when no numeric seen *)
  mutable hi : float;
  mutable numeric_count : int;
}

type table_state = {
  columns : string array;
  states : column_state array;
  mutable rows : int;
}

type t = { tables : (string, table_state) Hashtbl.t }

let new_column_state () =
  {
    counts = Hashtbl.create 64;
    mf = 0;
    lo = infinity;
    hi = neg_infinity;
    numeric_count = 0;
  }

let create () = { tables = Hashtbl.create 8 }

let table_key = String.lowercase_ascii

let register t ~table ~columns =
  let columns = Array.of_list (List.map String.lowercase_ascii columns) in
  Hashtbl.replace t.tables (table_key table)
    {
      columns;
      states = Array.init (Array.length columns) (fun _ -> new_column_state ());
      rows = 0;
    }

let find_table t table =
  match Hashtbl.find_opt t.tables (table_key table) with
  | Some ts -> ts
  | None -> invalid_arg ("Metrics_live: unknown table " ^ table)

let insert_value cs v =
  (match v with
  | Value.Null -> ()
  | v ->
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt cs.counts v) in
    Hashtbl.replace cs.counts v n;
    if n > cs.mf then cs.mf <- n);
  match Value.to_float v with
  | Some f ->
    cs.numeric_count <- cs.numeric_count + 1;
    if f < cs.lo then cs.lo <- f;
    if f > cs.hi then cs.hi <- f
  | None -> ()

(* Deleting can lower mf; recompute lazily only when the deleted value held
   the maximum (the common case — deleting a non-modal value — stays O(1)).
   The numeric extremes are recomputed from the counts when an extreme
   value's count reaches zero. *)
let delete_value cs v =
  (match v with
  | Value.Null -> ()
  | v -> (
    match Hashtbl.find_opt cs.counts v with
    | None -> invalid_arg "Metrics_live: deleting a value that was never inserted"
    | Some 1 ->
      Hashtbl.remove cs.counts v;
      if cs.mf = 1 && Hashtbl.length cs.counts = 0 then cs.mf <- 0
      else if cs.mf >= 1 then begin
        (* the removed value might have been the last modal one *)
        let best = Hashtbl.fold (fun _ n acc -> max acc n) cs.counts 0 in
        cs.mf <- best
      end
    | Some n ->
      Hashtbl.replace cs.counts v (n - 1);
      if n = cs.mf then begin
        let best = Hashtbl.fold (fun _ n acc -> max acc n) cs.counts 0 in
        cs.mf <- best
      end));
  match Value.to_float v with
  | Some f ->
    cs.numeric_count <- cs.numeric_count - 1;
    if cs.numeric_count = 0 then begin
      cs.lo <- infinity;
      cs.hi <- neg_infinity
    end
    else if f = cs.lo || f = cs.hi then begin
      (* recompute extremes from the surviving values *)
      cs.lo <- infinity;
      cs.hi <- neg_infinity;
      Hashtbl.iter
        (fun v n ->
          if n > 0 then
            match Value.to_float v with
            | Some g ->
              if g < cs.lo then cs.lo <- g;
              if g > cs.hi then cs.hi <- g
            | None -> ())
        cs.counts
    end
  | None -> ()

let insert_row t ~table (row : Value.t array) =
  let ts = find_table t table in
  if Array.length row <> Array.length ts.columns then
    invalid_arg "Metrics_live.insert_row: arity mismatch";
  Array.iteri (fun i v -> insert_value ts.states.(i) v) row;
  ts.rows <- ts.rows + 1

let delete_row t ~table (row : Value.t array) =
  let ts = find_table t table in
  if Array.length row <> Array.length ts.columns then
    invalid_arg "Metrics_live.delete_row: arity mismatch";
  Array.iteri (fun i v -> delete_value ts.states.(i) v) row;
  ts.rows <- ts.rows - 1

let update_row t ~table ~before ~after =
  delete_row t ~table before;
  insert_row t ~table after

let of_database db =
  let t = create () in
  List.iter
    (fun name ->
      let table = Database.find db name in
      register t ~table:name ~columns:(Array.to_list (Table.columns table));
      Array.iter (fun row -> insert_row t ~table:name row) (Table.rows table))
    (Database.table_names db);
  t

let column_index ts column =
  let column = String.lowercase_ascii column in
  let n = Array.length ts.columns in
  let rec go i =
    if i >= n then invalid_arg ("Metrics_live: unknown column " ^ column)
    else if ts.columns.(i) = column then i
    else go (i + 1)
  in
  go 0

let mf t ~table ~column =
  let ts = find_table t table in
  ts.states.(column_index ts column).mf

let vr t ~table ~column =
  let ts = find_table t table in
  let cs = ts.states.(column_index ts column) in
  if cs.numeric_count = 0 then None else Some (cs.hi -. cs.lo)

let row_count t ~table = (find_table t table).rows

(* Snapshot into the static metrics representation FLEX consumes; public
   tables and primary keys are preserved from [base] when given. *)
let snapshot ?base t : Metrics.t =
  let m = match base with Some b -> b | None -> Metrics.create () in
  Hashtbl.iter
    (fun table ts ->
      Metrics.set_row_count m ~table ts.rows;
      Array.iteri
        (fun i column ->
          Metrics.set_mf m ~table ~column ts.states.(i).mf;
          match vr t ~table ~column with
          | Some r -> Metrics.set_vr m ~table ~column r
          | None -> ())
        ts.columns)
    t.tables;
  m
