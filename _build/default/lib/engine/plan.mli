module Ast = Flex_sql.Ast

(** Logical query plans mirroring the executor's decisions (hash join on
    column-equality conjuncts, nested loop otherwise), rendered as an
    indented tree — the engine's EXPLAIN. *)

type join_strategy = Hash_join of (string * string) list | Nested_loop

type t =
  | Scan of { table : string; alias : string }
  | Derived of { plan : t; alias : string }
  | Join of {
      kind : Ast.join_kind;
      strategy : join_strategy;
      residual_conjuncts : int;  (** non-equality conjuncts checked per match *)
      left : t;
      right : t;
    }
  | Filter of { predicate : string; input : t }
  | Aggregate of {
      group_by : string list;
      aggregates : string list;
      having : bool;
      input : t;
    }
  | Project of { columns : string list; distinct : bool; input : t }
  | Sort of { keys : string list; input : t }
  | Slice of { limit : int option; offset : int option; input : t }
  | Set_op of { op : string; all : bool; left : t; right : t }
  | With_ctes of { ctes : (string * t) list; input : t }

val of_query : Ast.query -> t
val of_table_ref : Ast.table_ref -> t
val pp : t Fmt.t
val to_string : t -> string
val explain_sql : string -> (string, string) result
