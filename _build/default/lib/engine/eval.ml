module Ast = Flex_sql.Ast

(* Scalar operations with SQL three-valued logic. Pure value-level semantics;
   column resolution and subqueries live in Executor. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt


(* WHERE/HAVING keep a row only when the predicate is exactly TRUE. *)
let is_truthy = function Value.Bool true -> true | _ -> false

let and3 a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | a, b -> error "AND applied to non-boolean values %a, %a" Value.pp a Value.pp b

let or3 a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | a, b -> error "OR applied to non-boolean values %a, %a" Value.pp a Value.pp b

let not3 = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | v -> error "NOT applied to non-boolean value %a" Value.pp v

let arith op_name int_op float_op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (int_op x y)
  | _ -> (
    match (Value.to_float a, Value.to_float b) with
    | Some x, Some y -> Value.Float (float_op x y)
    | _ -> error "%s applied to non-numeric values %a, %a" op_name Value.pp a Value.pp b)

let divide a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int _, Value.Int 0 -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (x / y)
  | _ -> (
    match (Value.to_float a, Value.to_float b) with
    | Some _, Some 0.0 -> Value.Null
    | Some x, Some y -> Value.Float (x /. y)
    | _ -> error "division of non-numeric values %a, %a" Value.pp a Value.pp b)

let modulo a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int _, Value.Int 0 -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (x mod y)
  | _ -> error "%% requires integers, got %a, %a" Value.pp a Value.pp b

let concat a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | a, b -> Value.String (Value.to_csv_string a ^ Value.to_csv_string b)

let comparison op a b =
  let open Ast in
  match Value.sql_compare a b with
  | None -> Value.Null
  | Some c ->
    let r =
      match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | Add | Sub | Mul | Div | Mod | And | Or | Concat -> assert false
    in
    Value.Bool r

let binop (op : Ast.binop) a b =
  match op with
  | Ast.Add -> arith "+" ( + ) ( +. ) a b
  | Ast.Sub -> arith "-" ( - ) ( -. ) a b
  | Ast.Mul -> arith "*" ( * ) ( *. ) a b
  | Ast.Div -> divide a b
  | Ast.Mod -> modulo a b
  | Ast.And -> and3 a b
  | Ast.Or -> or3 a b
  | Ast.Concat -> concat a b
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> comparison op a b

let unop (op : Ast.unop) a =
  match (op, a) with
  | Ast.Not, v -> not3 v
  | Ast.Neg, Value.Null -> Value.Null
  | Ast.Neg, Value.Int i -> Value.Int (-i)
  | Ast.Neg, Value.Float f -> Value.Float (-.f)
  | Ast.Neg, v -> error "negation of non-numeric value %a" Value.pp v

(* SQL LIKE: '%' matches any sequence, '_' any single character. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoised recursive match over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= np then si >= ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.replace memo (pi, si) r;
      r
  in
  go 0 0

let like subject pattern =
  match (subject, pattern) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.String s, Value.String p -> Value.Bool (like_match ~pattern:p s)
  | s, Value.String p -> Value.Bool (like_match ~pattern:p (Value.to_csv_string s))
  | _, p -> error "LIKE pattern must be a string, got %a" Value.pp p

let cast v ty =
  let base =
    match String.index_opt ty '(' with
    | Some i -> String.sub ty 0 i
    | None -> ty
  in
  match (String.lowercase_ascii base, v) with
  | _, Value.Null -> Value.Null
  | ("int" | "integer" | "bigint" | "smallint"), v -> (
    match v with
    | Value.String s -> (
      match int_of_string_opt (String.trim s) with Some i -> Value.Int i | None -> Value.Null)
    | v -> ( match Value.to_int v with Some i -> Value.Int i | None -> Value.Null))
  | ("float" | "double" | "real" | "decimal" | "numeric"), v -> (
    match v with
    | Value.String s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Value.Float f
      | None -> Value.Null)
    | v -> ( match Value.to_float v with Some f -> Value.Float f | None -> Value.Null))
  | ("varchar" | "char" | "text" | "string"), v -> Value.String (Value.to_csv_string v)
  | ("bool" | "boolean"), v -> (
    match v with
    | Value.Bool _ -> v
    | Value.Int 0 -> Value.Bool false
    | Value.Int _ -> Value.Bool true
    | Value.String s -> (
      match String.lowercase_ascii s with
      | "true" | "t" | "1" -> Value.Bool true
      | "false" | "f" | "0" -> Value.Bool false
      | _ -> Value.Null)
    | _ -> Value.Null)
  | ("date" | "timestamp"), v -> Value.String (Value.to_csv_string v)
  | other, _ -> error "unsupported CAST target type %s" other

(* Scalar function library; names arrive lowercased from the lexer. *)
let func name (args : Value.t list) =
  let str1 f =
    match args with
    | [ Value.Null ] -> Value.Null
    | [ v ] -> f (Value.to_csv_string v)
    | _ -> error "%s expects 1 argument" name
  in
  match (name, args) with
  | "lower", _ -> str1 (fun s -> Value.String (String.lowercase_ascii s))
  | "upper", _ -> str1 (fun s -> Value.String (String.uppercase_ascii s))
  | "length", _ -> str1 (fun s -> Value.Int (String.length s))
  | "trim", _ -> str1 (fun s -> Value.String (String.trim s))
  | "abs", [ Value.Null ] -> Value.Null
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | "round", [ Value.Null ] -> Value.Null
  | "round", [ Value.Int i ] -> Value.Int i
  | "round", [ Value.Float f ] -> Value.Float (Float.round f)
  | "round", [ Value.Float f; Value.Int d ] ->
    let m = Float.pow 10.0 (float_of_int d) in
    Value.Float (Float.round (f *. m) /. m)
  | "floor", [ Value.Float f ] -> Value.Int (int_of_float (Float.floor f))
  | "floor", [ Value.Int i ] -> Value.Int i
  | "ceil", [ Value.Float f ] -> Value.Int (int_of_float (Float.ceil f))
  | "ceil", [ Value.Int i ] -> Value.Int i
  | "coalesce", args ->
    (try List.find (fun v -> not (Value.is_null v)) args with Not_found -> Value.Null)
  | "nullif", [ a; b ] -> if Value.equal a b then Value.Null else a
  | "concat", args ->
    Value.String (String.concat "" (List.map Value.to_csv_string args))
  | "substr", [ s; start ] -> (
    match (s, Value.to_int start) with
    | Value.Null, _ | _, None -> Value.Null
    | v, Some start ->
      let s = Value.to_csv_string v in
      let start = max 0 (start - 1) in
      if start >= String.length s then Value.String ""
      else Value.String (String.sub s start (String.length s - start)))
  | "substr", [ s; start; len ] -> (
    match (s, Value.to_int start, Value.to_int len) with
    | Value.Null, _, _ | _, None, _ | _, _, None -> Value.Null
    | v, Some start, Some len ->
      let s = Value.to_csv_string v in
      let start = max 0 (start - 1) in
      if start >= String.length s || len <= 0 then Value.String ""
      else Value.String (String.sub s start (min len (String.length s - start))))
  | "year", [ Value.String s ] when String.length s >= 4 -> (
    match int_of_string_opt (String.sub s 0 4) with
    | Some y -> Value.Int y
    | None -> Value.Null)
  | "year", [ _ ] -> Value.Null
  | "month", [ Value.String s ] when String.length s >= 7 -> (
    match int_of_string_opt (String.sub s 5 2) with
    | Some m -> Value.Int m
    | None -> Value.Null)
  | "month", [ _ ] -> Value.Null
  | "sqrt", [ Value.Null ] -> Value.Null
  | "sqrt", [ v ] -> (
    match Value.to_float v with
    | Some f when f >= 0.0 -> Value.Float (sqrt f)
    | _ -> Value.Null)
  | "greatest", args when args <> [] ->
    List.fold_left (fun acc v -> if Value.compare v acc > 0 then v else acc)
      (List.hd args) args
  | "least", args when args <> [] ->
    List.fold_left (fun acc v -> if Value.compare v acc < 0 then v else acc)
      (List.hd args) args
  | name, _ -> error "unknown function %s/%d" name (List.length args)
