(* A database: a set of named tables. Lookups are case-insensitive. *)

type t = { tables : (string, Table.t) Hashtbl.t }

exception Unknown_table of string

let create () = { tables = Hashtbl.create 16 }

let of_tables ts =
  let db = create () in
  List.iter (fun t -> Hashtbl.replace db.tables (Table.name t) t) ts;
  db

let add db table = Hashtbl.replace db.tables (Table.name table) table

let find_opt db name = Hashtbl.find_opt db.tables (String.lowercase_ascii name)

let find db name =
  match find_opt db name with Some t -> t | None -> raise (Unknown_table name)

let mem db name = Hashtbl.mem db.tables (String.lowercase_ascii name)

let table_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.tables [] |> List.sort compare

let total_rows db =
  Hashtbl.fold (fun _ t acc -> acc + Table.row_count t) db.tables 0

(* A copy sharing row arrays; [Table.with_row] already copies on write. *)
let copy db =
  let db' = create () in
  Hashtbl.iter (fun name t -> Hashtbl.replace db'.tables name t) db.tables;
  db'

let pp ppf db =
  Fmt.pf ppf "database with %d tables, %d rows total"
    (Hashtbl.length db.tables) (total_rows db)
