module Ast = Flex_sql.Ast

(* A logical query plan mirroring the decisions Executor makes (hash join on
   column-equality conjuncts, nested loop otherwise; grouped vs plain
   projection; sort/slice placement). Purely syntactic — used by EXPLAIN in
   the CLI and by tests documenting executor behaviour; the executor itself
   interprets the AST directly. *)

type join_strategy = Hash_join of (string * string) list | Nested_loop

type t =
  | Scan of { table : string; alias : string }
  | Derived of { plan : t; alias : string }
  | Join of {
      kind : Ast.join_kind;
      strategy : join_strategy;
      residual_conjuncts : int;
      left : t;
      right : t;
    }
  | Filter of { predicate : string; input : t }
  | Aggregate of { group_by : string list; aggregates : string list; having : bool; input : t }
  | Project of { columns : string list; distinct : bool; input : t }
  | Sort of { keys : string list; input : t }
  | Slice of { limit : int option; offset : int option; input : t }
  | Set_op of { op : string; all : bool; left : t; right : t }
  | With_ctes of { ctes : (string * t) list; input : t }

let col_str (c : Ast.col_ref) =
  match c.table with Some t -> t ^ "." ^ c.column | None -> c.column

(* Mirror Executor.split_join_condition, approximated syntactically: every
   column-equality conjunct becomes a hash key. *)
let join_keys (cond : Ast.join_cond) =
  match cond with
  | Ast.Cond_none -> ([], 0)
  | Ast.Using cols -> (List.map (fun c -> (c, c)) cols, 0)
  | Ast.Natural -> ([ ("<common>", "<common>") ], 0)
  | Ast.On e ->
    let conjuncts = Ast.conjuncts e in
    let keys, residual =
      List.partition
        (function Ast.Binop (Ast.Eq, Ast.Col _, Ast.Col _) -> true | _ -> false)
        conjuncts
    in
    ( List.filter_map
        (function
          | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) -> Some (col_str a, col_str b)
          | _ -> None)
        keys,
      List.length residual )

let rec of_table_ref (tr : Ast.table_ref) : t =
  match tr with
  | Ast.Table { name; alias } -> Scan { table = name; alias = Option.value alias ~default:name }
  | Ast.Derived { query; alias } -> Derived { plan = of_query query; alias }
  | Ast.Join { kind; left; right; cond } ->
    let keys, residual = join_keys cond in
    let strategy =
      if kind = Ast.Cross || keys = [] then Nested_loop else Hash_join keys
    in
    Join
      {
        kind;
        strategy;
        residual_conjuncts = residual;
        left = of_table_ref left;
        right = of_table_ref right;
      }

and of_select (s : Ast.select) : t =
  let source =
    match s.from with
    | [] -> Scan { table = "<empty>"; alias = "<empty>" }
    | [ tr ] -> of_table_ref tr
    | tr :: rest ->
      List.fold_left
        (fun acc tr ->
          Join
            {
              kind = Ast.Cross;
              strategy = Nested_loop;
              residual_conjuncts = 0;
              left = acc;
              right = of_table_ref tr;
            })
        (of_table_ref tr) rest
  in
  let filtered =
    match s.where with
    | None -> source
    | Some e -> Filter { predicate = Flex_sql.Pretty.expr e; input = source }
  in
  let aggs = Ast.select_aggregates s in
  let column_names =
    List.map
      (function
        | Ast.Proj_star -> "*"
        | Ast.Proj_table_star t -> t ^ ".*"
        | Ast.Proj_expr (e, Some a) -> Flex_sql.Pretty.expr e ^ " AS " ^ a
        | Ast.Proj_expr (e, None) -> Flex_sql.Pretty.expr e)
      s.projections
  in
  let body =
    if aggs = [] && s.group_by = [] then
      Project { columns = column_names; distinct = s.distinct; input = filtered }
    else
      let agg_names =
        List.map
          (fun (f, distinct, arg) ->
            Fmt.str "%s(%s%s)"
              (String.uppercase_ascii (Ast.agg_func_name f))
              (if distinct then "DISTINCT " else "")
              (match arg with Ast.Star -> "*" | Ast.Arg e -> Flex_sql.Pretty.expr e))
          aggs
      in
      let grouped =
        Aggregate
          {
            group_by = List.map Flex_sql.Pretty.expr s.group_by;
            aggregates = agg_names;
            having = s.having <> None;
            input = filtered;
          }
      in
      if s.distinct then
        Project { columns = column_names; distinct = true; input = grouped }
      else grouped
  in
  body

and of_body (b : Ast.body) : t =
  match b with
  | Ast.Select s -> of_select s
  | Ast.Union { all; left; right } ->
    Set_op { op = "UNION"; all; left = of_body left; right = of_body right }
  | Ast.Except { all; left; right } ->
    Set_op { op = "EXCEPT"; all; left = of_body left; right = of_body right }
  | Ast.Intersect { all; left; right } ->
    Set_op { op = "INTERSECT"; all; left = of_body left; right = of_body right }

and of_query (q : Ast.query) : t =
  let body = of_body q.body in
  let sorted =
    if q.order_by = [] then body
    else
      Sort
        {
          keys =
            List.map
              (fun (e, dir) ->
                Flex_sql.Pretty.expr e
                ^ (match dir with Ast.Asc -> " ASC" | Ast.Desc -> " DESC"))
              q.order_by;
          input = body;
        }
  in
  let sliced =
    if q.limit = None && q.offset = None then sorted
    else Slice { limit = q.limit; offset = q.offset; input = sorted }
  in
  if q.ctes = [] then sliced
  else
    With_ctes
      {
        ctes = List.map (fun (c : Ast.cte) -> (c.cte_name, of_query c.cte_query)) q.ctes;
        input = sliced;
      }

(* --- rendering ------------------------------------------------------------- *)

let rec pp_indent ppf (indent, t) =
  let pad = String.make (indent * 2) ' ' in
  let line fmt = Fmt.pf ppf ("%s" ^^ fmt ^^ "@.") pad in
  match t with
  | Scan { table; alias } ->
    if table = alias then line "Scan %s" table else line "Scan %s AS %s" table alias
  | Derived { plan; alias } ->
    line "Derived AS %s" alias;
    pp_indent ppf (indent + 1, plan)
  | Join { kind; strategy; residual_conjuncts; left; right } ->
    (match strategy with
    | Hash_join keys ->
      line "%s [hash on %s]%s"
        (Ast.join_kind_name kind)
        (String.concat ", " (List.map (fun (a, b) -> a ^ " = " ^ b) keys))
        (if residual_conjuncts > 0 then Fmt.str " +%d residual" residual_conjuncts
         else "")
    | Nested_loop ->
      line "%s [nested loop]%s"
        (Ast.join_kind_name kind)
        (if residual_conjuncts > 0 then Fmt.str " +%d residual" residual_conjuncts
         else ""));
    pp_indent ppf (indent + 1, left);
    pp_indent ppf (indent + 1, right)
  | Filter { predicate; input } ->
    line "Filter %s" predicate;
    pp_indent ppf (indent + 1, input)
  | Aggregate { group_by; aggregates; having; input } ->
    line "Aggregate [%s]%s%s"
      (String.concat ", " aggregates)
      (if group_by = [] then "" else " GROUP BY " ^ String.concat ", " group_by)
      (if having then " HAVING" else "");
    pp_indent ppf (indent + 1, input)
  | Project { columns; distinct; input } ->
    line "Project%s [%s]" (if distinct then " DISTINCT" else "") (String.concat ", " columns);
    pp_indent ppf (indent + 1, input)
  | Sort { keys; input } ->
    line "Sort [%s]" (String.concat ", " keys);
    pp_indent ppf (indent + 1, input)
  | Slice { limit; offset; input } ->
    line "Slice%s%s"
      (match limit with Some n -> Fmt.str " LIMIT %d" n | None -> "")
      (match offset with Some n -> Fmt.str " OFFSET %d" n | None -> "");
    pp_indent ppf (indent + 1, input)
  | Set_op { op; all; left; right } ->
    line "%s%s" op (if all then " ALL" else "");
    pp_indent ppf (indent + 1, left);
    pp_indent ppf (indent + 1, right)
  | With_ctes { ctes; input } ->
    List.iter
      (fun (name, plan) ->
        line "CTE %s:" name;
        pp_indent ppf (indent + 1, plan))
      ctes;
    pp_indent ppf (indent, input)

let pp ppf t = pp_indent ppf (0, t)

let to_string t = Fmt.str "%a" pp t

let explain_sql sql =
  match Flex_sql.Parser.parse sql with
  | Ok q -> Ok (to_string (of_query q))
  | Error e -> Error e
