lib/baselines/wpinq.ml: Array Flex_dp Flex_engine Hashtbl List
