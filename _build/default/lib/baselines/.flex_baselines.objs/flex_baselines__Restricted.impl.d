lib/baselines/restricted.ml: Flex_core Flex_dp Flex_sql Float Fmt List Option String
