lib/baselines/pinq.mli: Flex_dp Flex_engine
