lib/baselines/sample_aggregate.ml: Array Flex_dp Flex_engine Float Fmt List
