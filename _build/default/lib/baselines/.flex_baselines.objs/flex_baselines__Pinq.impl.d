lib/baselines/pinq.ml: Array Flex_dp Flex_engine Hashtbl List
