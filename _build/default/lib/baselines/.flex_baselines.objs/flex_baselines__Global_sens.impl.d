lib/baselines/global_sens.ml: Flex_dp Flex_sql Fmt List
