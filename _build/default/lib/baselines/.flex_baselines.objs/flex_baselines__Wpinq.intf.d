lib/baselines/wpinq.mli: Flex_dp Flex_engine
