lib/baselines/restricted.mli: Flex_core Flex_dp Flex_sql Fmt
