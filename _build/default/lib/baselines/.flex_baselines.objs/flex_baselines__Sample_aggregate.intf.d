lib/baselines/sample_aggregate.mli: Flex_dp Flex_engine Fmt
