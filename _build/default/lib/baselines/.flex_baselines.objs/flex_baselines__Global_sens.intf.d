lib/baselines/global_sens.mli: Flex_dp Flex_sql Fmt
