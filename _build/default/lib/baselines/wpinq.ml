module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Rng = Flex_dp.Rng
module Laplace = Flex_dp.Laplace

(* Weighted PINQ (Proserpio, Goldberg, McSherry): every record carries a
   weight; the join rescales weights so the end-to-end sensitivity of a
   noisy count is 1. This is the baseline FLEX is compared against in §5.5
   (the paper transcribes SQL queries into wPINQ programs by hand; so do our
   experiment drivers). *)

type row = Value.t array

type t = { rows : (row * float) list }

let of_table table =
  { rows = Array.to_list (Array.map (fun r -> (r, 1.0)) (Table.rows table)) }

let of_rows rows = { rows = List.map (fun r -> (r, 1.0)) rows }

let size t = List.length t.rows

let total_weight t = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 t.rows

(* 'Where': stable transformation, weights unchanged. *)
let filter pred t = { rows = List.filter (fun (r, _) -> pred r) t.rows }

(* 'Select': map the record; weights of newly identical records combine. *)
let map f t = { rows = List.map (fun (r, w) -> (f r, w)) t.rows }

(* wPINQ's binary join: for a key with left weights A and right weights B,
   each output pair (a, b) gets weight a.w * b.w / (||A||_1 + ||B||_1),
   which caps each input record's total influence at 1. *)
let join ~key_left ~key_right ~combine left right =
  let groups = Hashtbl.create 64 in
  let add side (r, w) key =
    if not (Value.is_null key) then begin
      let l, rr =
        match Hashtbl.find_opt groups key with Some g -> g | None -> ([], [])
      in
      match side with
      | `L -> Hashtbl.replace groups key ((r, w) :: l, rr)
      | `R -> Hashtbl.replace groups key (l, (r, w) :: rr)
    end
  in
  List.iter (fun (r, w) -> add `L (r, w) (key_left r)) left.rows;
  List.iter (fun (r, w) -> add `R (r, w) (key_right r)) right.rows;
  let out = ref [] in
  Hashtbl.iter
    (fun _key (ls, rs) ->
      match (ls, rs) with
      | [], _ | _, [] -> ()
      | ls, rs ->
        let la = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 ls in
        let rb = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 rs in
        let denom = la +. rb in
        List.iter
          (fun (lr, lw) ->
            List.iter
              (fun (rr, rw) -> out := (combine lr rr, lw *. rw /. denom) :: !out)
              rs)
          ls)
    groups;
  { rows = !out }

(* Join against a *public* table: implemented with select/filter semantics so
   no weight is scaled away and no noise protects public records — the same
   treatment the paper uses to keep the §5.5 comparison fair with FLEX's
   public-table optimisation. Each private row is combined with the matching
   public rows at unchanged weight. *)
let join_public ~key_left ~key_right ~combine private_side public_rows =
  let lookup = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = key_right r in
      if not (Value.is_null k) then Hashtbl.add lookup k r)
    public_rows;
  let out = ref [] in
  List.iter
    (fun (lr, w) ->
      let k = key_left lr in
      if not (Value.is_null k) then
        List.iter
          (fun pr -> out := (combine lr pr, w) :: !out)
          (List.rev (Hashtbl.find_all lookup k)))
    private_side.rows;
  { rows = !out }

(* NoisyCount: total weight + Lap(1/epsilon). *)
let noisy_count rng ~epsilon t =
  if epsilon <= 0.0 then invalid_arg "Wpinq.noisy_count: epsilon must be positive";
  total_weight t +. Laplace.sample rng ~scale:(1.0 /. epsilon)

(* Noisy histogram keyed by a record projection: each bin's weight gets
   independent Lap(1/epsilon) noise (bins are disjoint, so parallel
   composition applies). Only keys present in the data are returned; the
   §5.5 experiments compare per-bin errors on observed bins. *)
let noisy_histogram rng ~epsilon ~key t =
  if epsilon <= 0.0 then invalid_arg "Wpinq.noisy_histogram: epsilon must be positive";
  let bins = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r, w) ->
      let k = key r in
      match Hashtbl.find_opt bins k with
      | Some cell -> cell := !cell +. w
      | None ->
        Hashtbl.add bins k (ref w);
        order := k :: !order)
    t.rows;
  List.rev_map
    (fun k ->
      let w = !(Hashtbl.find bins k) in
      (k, w +. Laplace.sample rng ~scale:(1.0 /. epsilon)))
    !order

let true_histogram ~key t =
  let bins = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r, w) ->
      let k = key r in
      match Hashtbl.find_opt bins k with
      | Some cell -> cell := !cell +. w
      | None ->
        Hashtbl.add bins k (ref w);
        order := k :: !order)
    t.rows;
  List.rev_map (fun k -> (k, !(Hashtbl.find bins k))) !order
