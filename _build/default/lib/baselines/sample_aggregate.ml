module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Rng = Flex_dp.Rng
module Laplace = Flex_dp.Laplace

(* Sample & aggregate (Nissim et al.; deployed by GUPT), discussed in paper
   §6: split the data into disjoint blocks, run the statistic on each block,
   and release a noisy aggregate of the per-block answers. Works for
   statistical estimators whose value concentrates as the sample grows
   (means, quantiles); it cannot support joins (splitting breaks join
   semantics) or raw counts (a count scales with the block size instead of
   concentrating) — the limitation Table 1's context describes. *)

type error = Too_few_blocks | Empty_data

let pp_error ppf = function
  | Too_few_blocks -> Fmt.string ppf "need at least 2 blocks"
  | Empty_data -> Fmt.string ppf "no rows to sample"

(* Deterministically partition rows into [blocks] disjoint chunks. *)
let partition ~blocks rows =
  let out = Array.make blocks [] in
  Array.iteri (fun i row -> out.(i mod blocks) <- row :: out.(i mod blocks)) rows;
  Array.to_list (Array.map List.rev out) |> List.filter (fun b -> b <> [])

(* Release an estimator with epsilon-DP: evaluate it on each block, then add
   Laplace noise scaled to the clamped output range divided by the block
   count (changing one row changes one block, hence one of the averaged
   values, by at most (hi - lo)). *)
let release rng ~epsilon ~blocks ~lo ~hi ~(estimator : Value.t array list -> float)
    (table : Table.t) : (float, error) result =
  if epsilon <= 0.0 then invalid_arg "Sample_aggregate.release: epsilon must be positive";
  if hi <= lo then invalid_arg "Sample_aggregate.release: empty output range";
  if blocks < 2 then Error Too_few_blocks
  else begin
    let rows = Table.rows table in
    if Array.length rows = 0 then Error Empty_data
    else begin
      let parts = partition ~blocks rows in
      let m = List.length parts in
      if m < 2 then Error Too_few_blocks
      else begin
        let clamp v = Float.min hi (Float.max lo v) in
        let answers = List.map (fun b -> clamp (estimator b)) parts in
        let mean = List.fold_left ( +. ) 0.0 answers /. float_of_int m in
        (* one changed row perturbs one block's clamped answer by <= hi-lo,
           so the mean has sensitivity (hi-lo)/m *)
        let sensitivity = (hi -. lo) /. float_of_int m in
        Ok (mean +. Laplace.sample rng ~scale:(sensitivity /. epsilon))
      end
    end
  end

(* Convenience estimators over a single column. *)
let mean_of_column table column =
  let idx =
    match Table.column_index table column with
    | Some i -> i
    | None -> invalid_arg ("Sample_aggregate: no column " ^ column)
  in
  fun rows ->
    let vals = List.filter_map (fun (r : Value.t array) -> Value.to_float r.(idx)) rows in
    match vals with
    | [] -> 0.0
    | vs -> List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

let median_of_column table column =
  let idx =
    match Table.column_index table column with
    | Some i -> i
    | None -> invalid_arg ("Sample_aggregate: no column " ^ column)
  in
  fun rows ->
    let vals =
      List.filter_map (fun (r : Value.t array) -> Value.to_float r.(idx)) rows
      |> List.sort compare
    in
    match vals with
    | [] -> 0.0
    | vs ->
      let a = Array.of_list vs in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
