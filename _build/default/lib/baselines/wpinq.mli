module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Rng = Flex_dp.Rng

(** Weighted PINQ (Proserpio, Goldberg, McSherry): every record carries a
    weight; the join rescales weights so the end-to-end sensitivity of a
    noisy count is 1. The §5.5 baseline FLEX is compared against. *)

type row = Value.t array

type t = { rows : (row * float) list }

val of_table : Table.t -> t
(** All weights 1. *)

val of_rows : row list -> t
val size : t -> int
val total_weight : t -> float

val filter : (row -> bool) -> t -> t
(** wPINQ 'Where': stable, weights unchanged. *)

val map : (row -> row) -> t -> t

val join :
  key_left:(row -> Value.t) ->
  key_right:(row -> Value.t) ->
  combine:(row -> row -> row) ->
  t ->
  t ->
  t
(** The weight-rescaling join: for a key with left weights A and right
    weights B, the pair (a, b) gets weight [a.w * b.w / (|A| + |B|)],
    capping each input record's influence at 1. NULL keys never match. *)

val join_public :
  key_left:(row -> Value.t) ->
  key_right:(row -> Value.t) ->
  combine:(row -> row -> row) ->
  t ->
  row list ->
  t
(** Join against a public table with select/filter semantics: weights pass
    through unscaled (the paper's fairness treatment in §5.5). *)

val noisy_count : Rng.t -> epsilon:float -> t -> float
(** Total weight + Lap(1/epsilon). *)

val noisy_histogram :
  Rng.t -> epsilon:float -> key:(row -> Value.t) -> t -> (Value.t * float) list
(** Per-bin noisy weights (bins are disjoint: parallel composition). Only
    keys present in the data are returned. *)

val true_histogram : key:(row -> Value.t) -> t -> (Value.t * float) list
