module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Rng = Flex_dp.Rng

(** Sample & aggregate (Nissim et al. / GUPT), discussed in paper §6: run a
    statistical estimator on disjoint blocks of the data and release a noisy
    mean of the per-block answers. Supports concentrating estimators (means,
    medians); cannot support joins or raw counts. *)

type error = Too_few_blocks | Empty_data

val pp_error : error Fmt.t

val partition : blocks:int -> 'a array -> 'a list list
(** Disjoint round-robin partition; empty blocks are dropped. *)

val release :
  Rng.t ->
  epsilon:float ->
  blocks:int ->
  lo:float ->
  hi:float ->
  estimator:(Value.t array list -> float) ->
  Table.t ->
  (float, error) result
(** epsilon-DP: one changed row touches one block, so the block-mean has
    sensitivity [(hi - lo) / blocks]. Estimator outputs are clamped to
    [lo, hi]. *)

val mean_of_column : Table.t -> string -> Value.t array list -> float
val median_of_column : Table.t -> string -> Value.t array list -> float
