module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Rng = Flex_dp.Rng

(** PINQ (McSherry): counting with a *restricted* join that groups both
    sides by key; a count over the join counts matched unique keys, which
    equals standard semantics only for one-to-one joins (paper Table 1). *)

type row = Value.t array

type t = { rows : row list }

val of_table : Table.t -> t
val filter : (row -> bool) -> t -> t

val join_groups :
  key_left:(row -> Value.t) ->
  key_right:(row -> Value.t) ->
  t ->
  t ->
  (Value.t * row list * row list) list
(** One entry per key present on both sides, with the matching groups. *)

val noisy_matched_key_count :
  Rng.t -> epsilon:float -> key_left:(row -> Value.t) -> key_right:(row -> Value.t) -> t -> t -> float
(** Matched-key count + Lap(2/epsilon) (the grouped join is 2-stable). *)

val noisy_count : Rng.t -> epsilon:float -> t -> float
