module Ast = Flex_sql.Ast
module Sens = Flex_dp.Sens
module Rng = Flex_dp.Rng
module Laplace = Flex_dp.Laplace

(* Restricted sensitivity (Blocki et al.): bound the *global* sensitivity of
   a counting query with joins using per-key frequency bounds promised by an
   auxiliary data model (here: the collected mf metrics, interpreted as
   global bounds). Works for one-to-one and one-to-many equijoins; rejects
   many-to-many joins, whose key frequencies are unbounded on both sides
   (Table 1). *)

type error =
  | Many_to_many_join
  | Not_a_counting_query
  | Unsupported_query of string

let pp_error ppf = function
  | Many_to_many_join ->
    Fmt.string ppf "restricted sensitivity cannot bound a many-to-many join"
  | Not_a_counting_query -> Fmt.string ppf "only counting queries are supported"
  | Unsupported_query m -> Fmt.pf ppf "unsupported query: %s" m

exception Rejected of error

(* Global stability of a FROM tree under the data-model bounds: a table has
   stability 1; a join with a unique key (bound 1) on at least one side
   multiplies the other side's stability by the non-unique key's bound. *)
let rec stability cat (tr : Ast.table_ref) : float =
  match tr with
  | Ast.Table { name; _ } ->
    if cat.Flex_core.Elastic.is_public name then 0.0 else 1.0
  | Ast.Derived _ -> raise (Rejected (Unsupported_query "derived table"))
  | Ast.Join { kind; left; right; cond } -> (
    if kind = Ast.Cross then raise (Rejected (Unsupported_query "cross join"));
    let bound_of side (c : Ast.col_ref) =
      let table =
        match (c.table, side) with
        | Some t, _ -> t
        | None, `L -> (
          match left with
          | Ast.Table { name; alias } -> Option.value alias ~default:name
          | _ -> raise (Rejected (Unsupported_query "unqualified join key")))
        | None, `R -> (
          match right with
          | Ast.Table { name; alias } -> Option.value alias ~default:name
          | _ -> raise (Rejected (Unsupported_query "unqualified join key")))
      in
      (* resolve alias to base table via the join tree *)
      let rec base_of (tr : Ast.table_ref) label =
        match tr with
        | Ast.Table { name; alias } ->
          if String.lowercase_ascii (Option.value alias ~default:name)
             = String.lowercase_ascii label
          then Some name
          else None
        | Ast.Derived _ -> None
        | Ast.Join { left; right; _ } -> (
          match base_of left label with Some n -> Some n | None -> base_of right label)
      in
      let base =
        match base_of left table with
        | Some n -> Some n
        | None -> base_of right table
      in
      match base with
      | None -> raise (Rejected (Unsupported_query ("unknown relation " ^ table)))
      | Some base -> (
        match cat.Flex_core.Elastic.mf { table = base; column = c.column } with
        | Some m -> (float_of_int m, cat.Flex_core.Elastic.is_public base)
        | None -> raise (Rejected (Unsupported_query ("no bound for " ^ c.column))))
    in
    match cond with
    | Ast.On e -> (
      let keys =
        List.find_map
          (function
            | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) -> Some (a, b)
            | _ -> None)
          (Ast.conjuncts e)
      in
      match keys with
      | None -> raise (Rejected (Unsupported_query "non-equijoin"))
      | Some (a, b) ->
        let sl = stability cat left and sr = stability cat right in
        let ba, pub_a = bound_of `L a and bb, pub_b = bound_of `R b in
        (* public side: no protected rows change there *)
        if pub_a || sl = 0.0 then bb *. sr |> Float.max (ba *. sl)
        else if pub_b || sr = 0.0 then ba *. sl |> Float.max (bb *. sr)
        else if ba <= 1.0 then
          (* one-to-many: left key unique *) Float.max (bb *. sl) sr
        else if bb <= 1.0 then Float.max (ba *. sr) sl
        else raise (Rejected Many_to_many_join))
    | Ast.Using _ | Ast.Natural | Ast.Cond_none ->
      raise (Rejected (Unsupported_query "join without ON condition")))

(* Global sensitivity of SELECT COUNT(...) FROM tree WHERE ...; histogram
   queries double it, as for elastic sensitivity. *)
let global_sensitivity cat (q : Ast.query) : (float, error) result =
  match q.body with
  | Ast.Select s -> (
    let aggs = Ast.select_aggregates s in
    let only_counts =
      aggs <> [] && List.for_all (fun (f, _, _) -> f = Ast.Count) aggs
    in
    if not only_counts then Error Not_a_counting_query
    else
      match s.from with
      | [ tr ] -> (
        match stability cat tr with
        | st -> Ok (if s.group_by = [] then st else 2.0 *. st)
        | exception Rejected e -> Error e)
      | _ -> Error (Unsupported_query "FROM must be a single join tree"))
  | _ -> Error (Unsupported_query "set operation")

(* epsilon-DP release: true count + Lap(GS/epsilon). *)
let noisy_count rng cat ~epsilon (q : Ast.query) ~true_count =
  match global_sensitivity cat q with
  | Error e -> Error e
  | Ok gs -> Ok (true_count +. Laplace.sample rng ~scale:(gs /. epsilon))
