module Ast = Flex_sql.Ast
module Rng = Flex_dp.Rng

(** Restricted sensitivity (Blocki et al.): bound the *global* sensitivity
    of a counting query with joins using per-key frequency bounds promised
    by an auxiliary data model (here, the collected mf metrics read as
    global bounds). Handles one-to-one and one-to-many equijoins; rejects
    many-to-many joins (paper Table 1). *)

type error = Many_to_many_join | Not_a_counting_query | Unsupported_query of string

val pp_error : error Fmt.t

exception Rejected of error

val stability : Flex_core.Elastic.catalog -> Ast.table_ref -> float
(** Global stability of a FROM tree under the data-model bounds.
    @raise Rejected *)

val global_sensitivity : Flex_core.Elastic.catalog -> Ast.query -> (float, error) result
(** Global sensitivity of a counting query (doubled for histograms). *)

val noisy_count :
  Rng.t ->
  Flex_core.Elastic.catalog ->
  epsilon:float ->
  Ast.query ->
  true_count:float ->
  (float, error) result
(** epsilon-DP release: true count + Lap(GS/epsilon). *)
