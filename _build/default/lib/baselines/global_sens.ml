module Ast = Flex_sql.Ast
module Rng = Flex_dp.Rng
module Laplace = Flex_dp.Laplace

(* The textbook Laplace mechanism over global sensitivity. For counting
   queries without joins GS = 1 (2 for histograms); any join makes the
   global sensitivity unbounded ("a join has the ability to multiply input
   records", §3.1), so joins are rejected. Serves as the no-join baseline in
   the mechanism-capability matrix. *)

type error = Join_unbounded | Not_a_counting_query

let pp_error ppf = function
  | Join_unbounded ->
    Fmt.string ppf "global sensitivity of a query with joins is unbounded"
  | Not_a_counting_query -> Fmt.string ppf "only counting queries are supported"

let global_sensitivity (q : Ast.query) : (float, error) result =
  if Ast.joins_of_query q <> [] then Error Join_unbounded
  else
    match q.body with
    | Ast.Select s ->
      let aggs = Ast.select_aggregates s in
      if aggs = [] || List.exists (fun (f, _, _) -> f <> Ast.Count) aggs then
        Error Not_a_counting_query
      else Ok (if s.group_by = [] then 1.0 else 2.0)
    | _ -> Error Not_a_counting_query

let noisy_count rng ~epsilon (q : Ast.query) ~true_count =
  match global_sensitivity q with
  | Error e -> Error e
  | Ok gs -> Ok (true_count +. Laplace.sample rng ~scale:(gs /. epsilon))
