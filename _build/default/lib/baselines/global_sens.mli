module Ast = Flex_sql.Ast
module Rng = Flex_dp.Rng

(** The textbook Laplace mechanism over global sensitivity: counting queries
    without joins have GS = 1 (2 for histograms); any join makes the global
    sensitivity unbounded (paper §3.1), so joins are rejected. *)

type error = Join_unbounded | Not_a_counting_query

val pp_error : error Fmt.t
val global_sensitivity : Ast.query -> (float, error) result

val noisy_count :
  Rng.t -> epsilon:float -> Ast.query -> true_count:float -> (float, error) result
