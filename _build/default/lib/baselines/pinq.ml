module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Rng = Flex_dp.Rng
module Laplace = Flex_dp.Laplace

(* PINQ (McSherry): counting with a *restricted* join operator that groups
   both sides by key. A count over the joined result counts matched unique
   keys, not joined rows — equivalent to standard semantics only for
   one-to-one joins (Table 1). Stability of the restricted join is 2 and
   the count has sensitivity 1, so Lap(2/epsilon) noise suffices for the
   grouped pipeline; we charge Lap(1/epsilon) on the key count as in PINQ's
   NoisyCount over a stable transformation chain of stability 2. *)

type row = Value.t array

type t = { rows : row list }

let of_table table = { rows = Array.to_list (Table.rows table) }

let filter pred t = { rows = List.filter pred t.rows }

(* PINQ's Join: groups of left and right rows per key; the result has one
   record per key present on both sides. *)
let join_groups ~key_left ~key_right left right =
  let groups = Hashtbl.create 64 in
  let add side r key =
    if not (Value.is_null key) then begin
      let l, rr =
        match Hashtbl.find_opt groups key with Some g -> g | None -> ([], [])
      in
      match side with
      | `L -> Hashtbl.replace groups key (r :: l, rr)
      | `R -> Hashtbl.replace groups key (l, r :: rr)
    end
  in
  List.iter (fun r -> add `L r (key_left r)) left.rows;
  List.iter (fun r -> add `R r (key_right r)) right.rows;
  Hashtbl.fold
    (fun key (ls, rs) acc ->
      match (ls, rs) with [], _ | _, [] -> acc | ls, rs -> (key, ls, rs) :: acc)
    groups []

(* Count of matched keys + Lap(2/epsilon): the grouped join is a 2-stable
   transformation of either input. *)
let noisy_matched_key_count rng ~epsilon ~key_left ~key_right left right =
  if epsilon <= 0.0 then invalid_arg "Pinq.noisy_matched_key_count";
  let matched = join_groups ~key_left ~key_right left right in
  float_of_int (List.length matched) +. Laplace.sample rng ~scale:(2.0 /. epsilon)

(* Plain noisy count of a (possibly filtered) dataset: sensitivity 1. *)
let noisy_count rng ~epsilon t =
  if epsilon <= 0.0 then invalid_arg "Pinq.noisy_count";
  float_of_int (List.length t.rows) +. Laplace.sample rng ~scale:(1.0 /. epsilon)
