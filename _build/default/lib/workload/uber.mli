module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng

(** An Uber-like ride-sharing schema mirroring the tables named in the paper:
    trips, drivers, users (riders), cities (public), analytics (per-driver
    rollups), user_tags. Join keys are Zipf-distributed so max-frequency
    metrics are realistically skewed; the analytics rollup is consistent
    with the trips table. *)

type sizes = {
  cities : int;
  drivers : int;
  users : int;
  trips : int;
  user_tags : int;
}

val default_sizes : sizes
(** 40 cities, 1.5k drivers, 2.5k users, 20k trips. *)

val small_sizes : sizes
(** A quick fixture for tests (1.5k trips). *)

val generate : ?sizes:sizes -> Rng.t -> Database.t * Metrics.t
(** Deterministic under the given generator. The metrics mark [cities]
    public and declare the primary keys. *)

val city_names : string array
(** The four cities named by the §5.5 representative queries come first, so
    even the smallest databases contain them. *)

val city_id : string -> int option
