module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng

(* An Uber-like ride-sharing schema mirroring the tables named in the paper:
   trips, drivers, users (riders), cities (public), analytics (per-driver
   rollups), user_tags. Join keys are Zipf-distributed so that max-frequency
   metrics are realistically skewed and generated queries span a wide range
   of population sizes. *)

type sizes = {
  cities : int;
  drivers : int;
  users : int;
  trips : int;
  user_tags : int;
}

let default_sizes =
  { cities = 40; drivers = 1500; users = 2500; trips = 20_000; user_tags = 900 }

let small_sizes = { cities = 12; drivers = 120; users = 200; trips = 1500; user_tags = 80 }

(* The four cities named by the §5.5 representative queries come first so
   that even the smallest generated databases contain them. *)
let city_names =
  [|
    "san francisco"; "hanoi"; "hong kong"; "sydney"; "new york"; "los angeles";
    "chicago"; "seattle"; "austin"; "boston"; "miami"; "denver"; "atlanta";
    "portland"; "dallas"; "houston"; "phoenix"; "philadelphia"; "detroit";
    "london"; "paris"; "berlin"; "madrid"; "rome"; "amsterdam"; "dublin";
    "lisbon"; "warsaw"; "prague"; "melbourne"; "auckland"; "singapore"; "tokyo";
    "seoul"; "taipei"; "bangkok"; "jakarta"; "manila"; "mumbai"; "delhi";
    "cairo"; "lagos"; "nairobi"; "sao paulo"; "bogota"; "lima"; "santiago";
    "mexico city";
  |]

let countries =
  [| "us"; "vn"; "hk"; "au"; "us"; "us"; "us"; "us"; "us"; "us"; "us"; "us";
     "us"; "us"; "us"; "us"; "us"; "us"; "us"; "uk"; "fr"; "de"; "es"; "it";
     "nl"; "ie"; "pt"; "pl"; "cz"; "au"; "nz"; "sg"; "jp"; "kr"; "tw"; "th";
     "id"; "ph"; "in"; "in"; "eg"; "ng"; "ke"; "br"; "co"; "pe"; "cl"; "mx" |]

let trip_statuses = [ ("completed", 0.72); ("cancelled", 0.18); ("requested", 0.10) ]
let driver_statuses = [ ("active", 0.7); ("inactive", 0.25); ("suspended", 0.05) ]
let vehicles = [ ("car", 0.6); ("suv", 0.2); ("motorbike", 0.15); ("scooter", 0.05) ]
let tags = [ ("duplicate_account", 0.35); ("fraud_suspect", 0.2); ("vip", 0.3); ("test_account", 0.15) ]

let generate ?(sizes = default_sizes) rng : Database.t * Metrics.t =
  let n_cities = min sizes.cities (Array.length city_names) in
  let cities =
    Table.create ~name:"cities" ~columns:[ "id"; "name"; "country" ]
      (List.init n_cities (fun i ->
           [| Value.Int (i + 1); Value.String city_names.(i); Value.String countries.(i) |]))
  in
  let city_zipf = Rng.zipf_table ~n:n_cities ~s:0.9 in
  let driver_zipf = Rng.zipf_table ~n:sizes.drivers ~s:0.5 in
  let user_zipf = Rng.zipf_table ~n:sizes.users ~s:0.5 in
  let drivers =
    Table.create ~name:"drivers"
      ~columns:[ "id"; "city_id"; "signup_city_id"; "status"; "vehicle"; "signup_at"; "rating" ]
      (List.init sizes.drivers (fun i ->
           let home = Rng.zipf rng city_zipf in
           let signup =
             if Rng.bernoulli rng 0.85 then home else Rng.zipf rng city_zipf
           in
           [|
             Value.Int (i + 1);
             Value.Int home;
             Value.Int signup;
             Value.String (Datagen.pick_weighted rng driver_statuses);
             Value.String (Datagen.pick_weighted rng vehicles);
             Value.String (Datagen.random_date_range rng ~from_day:0 ~to_day:200);
             Value.Float (3.5 +. Rng.float rng 1.5);
           |]))
  in
  let users =
    Table.create ~name:"users"
      ~columns:[ "id"; "city_id"; "status"; "signup_at" ]
      (List.init sizes.users (fun i ->
           [|
             Value.Int (i + 1);
             Value.Int (Rng.zipf rng city_zipf);
             Value.String (Datagen.pick_weighted rng driver_statuses);
             Value.String (Datagen.random_date_range rng ~from_day:0 ~to_day:300);
           |]))
  in
  let completed = Hashtbl.create sizes.drivers in
  let last_trip = Hashtbl.create sizes.drivers in
  let trips =
    Table.create ~name:"trips"
      ~columns:[ "id"; "driver_id"; "rider_id"; "city_id"; "status"; "fare"; "requested_at" ]
      (List.init sizes.trips (fun i ->
           let driver = Rng.zipf rng driver_zipf in
           let status = Datagen.pick_weighted rng trip_statuses in
           let date = Datagen.random_date_2016 rng in
           if status = "completed" then begin
             Hashtbl.replace completed driver
               (1 + Option.value ~default:0 (Hashtbl.find_opt completed driver));
             let prev = Option.value ~default:"" (Hashtbl.find_opt last_trip driver) in
             if date > prev then Hashtbl.replace last_trip driver date
           end;
           [|
             Value.Int (i + 1);
             Value.Int driver;
             Value.Int (Rng.zipf rng user_zipf);
             Value.Int (Rng.zipf rng city_zipf);
             Value.String status;
             Value.Float (Float.round ((2.0 +. Rng.float rng 98.0) *. 100.0) /. 100.0);
             Value.String date;
           |]))
  in
  let analytics =
    Table.create ~name:"analytics"
      ~columns:[ "driver_id"; "completed_trips"; "rating"; "last_trip_at" ]
      (List.init sizes.drivers (fun i ->
           let d = i + 1 in
           [|
             Value.Int d;
             Value.Int (Option.value ~default:0 (Hashtbl.find_opt completed d));
             Value.Float (3.0 +. Rng.float rng 2.0);
             (match Hashtbl.find_opt last_trip d with
             | Some date -> Value.String date
             | None -> Value.Null);
           |]))
  in
  let user_tags =
    Table.create ~name:"user_tags"
      ~columns:[ "user_id"; "tag"; "tagged_at" ]
      (List.init sizes.user_tags (fun _ ->
           [|
             (* tags hit users roughly uniformly: a user carries only a few
                tags, so mf(user_tags.user_id) stays small and realistic *)
             Value.Int (1 + Rng.int rng sizes.users);
             Value.String (Datagen.pick_weighted rng tags);
             Value.String (Datagen.random_date_2016 rng);
           |]))
  in
  let db = Database.of_tables [ cities; drivers; users; trips; analytics; user_tags ] in
  let metrics = Metrics.compute db in
  Metrics.set_public metrics "cities";
  (* primary-key constraints, enforced by the schema and hence shared by all
     neighbouring databases *)
  List.iter
    (fun (table, column) -> Metrics.set_primary_key metrics ~table ~column)
    [ ("cities", "id"); ("drivers", "id"); ("users", "id"); ("trips", "id");
      ("analytics", "driver_id") ];
  (db, metrics)

(* City id lookup by name (for query templates). *)
let city_id name =
  let rec go i =
    if i >= Array.length city_names then None
    else if city_names.(i) = name then Some (i + 1)
    else go (i + 1)
  in
  go 0
