module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng
module Flex = Flex_core.Flex
module Errors = Flex_core.Errors

(** Shared drivers for the paper's evaluation experiments (§5): population
    sizes, median relative errors, error-bin histograms, the FLEX-vs-wPINQ
    comparison and the TPC-H sweep. *)

val population_of : Database.t -> string -> int
(** Run a population companion query; 0 on failure. *)

val median : float list -> float option

val flex_median_error :
  runs:int ->
  rng:Rng.t ->
  options:Flex.options ->
  db:Database.t ->
  metrics:Metrics.t ->
  string ->
  (float, Errors.reason) result
(** Median percent error over [runs] independent releases. *)

type measurement = { query : Qgen.t; population : int; median_error : float }

type workload_outcome = {
  measurements : measurement list;
  rejected : (Qgen.t * Errors.reason) list;
}

val run_workload :
  ?runs:int ->
  rng:Rng.t ->
  options:Flex.options ->
  db:Database.t ->
  metrics:Metrics.t ->
  Qgen.t list ->
  workload_outcome

(** {2 Binning (Figures 3, 6, 7)} *)

val error_bin_labels : string list
val error_bin : float -> string
val error_bins : float list -> (string * float) list
val population_bucket_labels : string list
val population_bucket : int -> string
val population_buckets : int list -> (string * int) list

val high_error_categories :
  workload_outcome -> threshold:float -> int * (string * float) list
(** Table 4: share of each query category among queries whose median error
    exceeds [threshold] percent. *)

(** {2 Table 5 (FLEX vs wPINQ)} *)

type comparison = {
  program : Representative.program;
  median_population : float;
  wpinq_error : float;
  flex_error : float;
}

val wpinq_median_error :
  runs:int -> rng:Rng.t -> epsilon:float -> Database.t -> Representative.program -> float
(** Error judged against the true SQL answer (so wPINQ's weight-rescaling
    bias counts against it, as in the paper). *)

val run_comparison :
  ?runs:int ->
  rng:Rng.t ->
  options:Flex.options ->
  db:Database.t ->
  metrics:Metrics.t ->
  unit ->
  comparison list

(** {2 Figure 5 (TPC-H)} *)

type tpch_measurement = { tq : Tpch.query; population : int; median_error : float }

val run_tpch :
  ?runs:int ->
  rng:Rng.t ->
  options:Flex.options ->
  db:Database.t ->
  metrics:Metrics.t ->
  unit ->
  tpch_measurement list * (string * Errors.reason) list
