module Rng = Flex_dp.Rng
module Features = Flex_sql.Features
module Ast = Flex_sql.Ast

(* Reproduction of the §2 empirical study. The paper's 8.1M production
   queries are proprietary, so we *sample* a synthetic corpus from the
   marginal distributions the paper publishes (study questions 1-8) and then
   re-measure the corpus with our own parser + feature extractor. The
   measurement pipeline is therefore fully exercised and the regenerated
   charts should match the sampled (i.e. published) marginals. *)

type backend = Vertica | Postgres | Mysql | Hive | Presto | Other_backend

let backend_name = function
  | Vertica -> "Vertica"
  | Postgres -> "Postgres"
  | Mysql -> "MySQL"
  | Hive -> "Hive"
  | Presto -> "Presto"
  | Other_backend -> "Other"

(* Paper, study question 1. *)
let backend_weights =
  [
    (Vertica, 6_362_631.0); (Postgres, 1_494_680.0); (Mysql, 94_206.0);
    (Hive, 81_660.0); (Presto, 39_521.0); (Other_backend, 29_387.0);
  ]

type qdesc = {
  backend : backend;
  sql : string;
  rows_out : int; (* result-size metadata (study question 8) *)
  cols_out : int;
}

let table_names =
  [| "trips"; "orders"; "users"; "sessions"; "payments"; "drivers"; "events";
     "devices"; "invoices"; "accounts" |]

let sample_backend rng =
  Datagen.pick_weighted rng
    (List.map (fun (b, w) -> (b, w)) backend_weights)

(* Join-count distribution shaped after study question 3: mostly small, a
   long tail reaching the paper's maximum of 95. *)
let sample_join_count rng =
  let u = Rng.float rng 1.0 in
  if u < 0.45 then 1
  else if u < 0.68 then 2
  else if u < 0.80 then 3
  else if u < 0.88 then 4
  else if u < 0.95 then 5 + Rng.int rng 6 (* 5..10 *)
  else if u < 0.995 then 11 + Rng.int rng 23 (* 11..33 *)
  else 34 + Rng.int rng 62 (* 34..95 *)

type cond_class = Equi | Compound | Colcmp | Litcmp

let sample_cond rng =
  Datagen.pick_weighted rng
    [ (Equi, 0.76); (Compound, 0.19); (Colcmp, 0.03); (Litcmp, 0.02) ]

type jkind = Jinner | Jleft | Jcross | Jright

let sample_kind rng =
  Datagen.pick_weighted rng
    [ (Jinner, 0.69); (Jleft, 0.29); (Jcross, 0.01); (Jright, 0.01) ]

(* Aggregation-function shares, study question 6. *)
let sample_agg rng =
  Datagen.pick_weighted rng
    [
      ("COUNT", 0.51); ("SUM", 0.29); ("AVG", 0.084); ("MAX", 0.059);
      ("MIN", 0.049); ("MEDIAN", 0.003); ("STDDEV", 0.001);
    ]

let agg_sql rng name alias_pool =
  let a = Datagen.pick rng alias_pool in
  match name with
  | "COUNT" -> if Rng.bernoulli rng 0.7 then "COUNT(*)" else Fmt.str "COUNT(%s.c1)" a
  | f -> Fmt.str "%s(%s.c%d)" f a (1 + Rng.int rng 4)

(* Log-uniform-ish result sizes (study question 8). *)
let sample_rows_out rng =
  int_of_float (Float.pow 10.0 (Rng.float rng 6.5))

let sample_cols_out rng ~statistical =
  if statistical then 1 + Rng.int rng 6
  else int_of_float (Float.pow 10.0 (Rng.float rng 2.4)) + 1

let synthesize_query rng =
  let statistical = Rng.bernoulli rng 0.34 in
  let has_join = Rng.bernoulli rng 0.621 in
  let n_joins = if has_join then sample_join_count rng else 0 in
  (* cap the SQL we actually synthesise; the tail still reports its join
     count through the generated text *)
  let self_join = has_join && Rng.bernoulli rng 0.28 in
  let base = Datagen.pick rng (Array.to_list table_names) in
  let aliases = ref [ "a0" ] in
  let buf = Buffer.create 256 in
  let joins_built = min n_joins 95 in
  let from = Buffer.create 128 in
  Buffer.add_string from (Fmt.str "%s a0" base);
  for j = 1 to joins_built do
    let alias = Fmt.str "a%d" j in
    let tbl =
      if self_join && j = 1 then base else Datagen.pick rng (Array.to_list table_names)
    in
    let prev = Fmt.str "a%d" (j - 1) in
    (match sample_kind rng with
    | Jcross -> Buffer.add_string from (Fmt.str " CROSS JOIN %s %s" tbl alias)
    | kind ->
      let kw =
        match kind with
        | Jinner -> "JOIN"
        | Jleft -> "LEFT JOIN"
        | Jright -> "RIGHT JOIN"
        | Jcross -> assert false
      in
      let cond =
        match sample_cond rng with
        | Equi ->
          let extra =
            if Rng.bernoulli rng 0.3 then Fmt.str " AND %s.c2 > %d" alias (Rng.int rng 100)
            else ""
          in
          Fmt.str "%s.key = %s.key%s" prev alias extra
        | Compound ->
          Fmt.str "(%s.c1 = %s.c1 OR lower(%s.c2) = '%c')" prev alias alias
            (Char.chr (97 + Rng.int rng 26))
        | Colcmp -> Fmt.str "%s.c1 > %s.c2" prev alias
        | Litcmp -> Fmt.str "%s.c1 = %d" alias (Rng.int rng 1000)
      in
      Buffer.add_string from (Fmt.str " %s %s %s ON %s" kw tbl alias cond));
    aliases := alias :: !aliases
  done;
  let alias_pool = !aliases in
  let projections =
    if statistical then begin
      let n_keys = Rng.int rng 3 in
      let keys =
        List.init n_keys (fun i ->
            Fmt.str "%s.c%d" (Datagen.pick rng alias_pool) (5 + i))
      in
      let n_aggs = 1 + Rng.int rng 3 in
      let aggs = List.init n_aggs (fun _ -> agg_sql rng (sample_agg rng) alias_pool) in
      (keys @ aggs, keys)
    end
    else begin
      let n_cols = 1 + Rng.int rng 8 in
      ( List.init n_cols (fun i ->
            Fmt.str "%s.c%d" (Datagen.pick rng alias_pool) (1 + (i mod 8))),
        [] )
    end
  in
  let cols, group_keys = projections in
  Buffer.add_string buf (Fmt.str "SELECT %s FROM %s" (String.concat ", " cols) (Buffer.contents from));
  if Rng.bernoulli rng 0.6 then
    Buffer.add_string buf
      (Fmt.str " WHERE a0.c1 >= %d AND a0.c8 = '%c'" (Rng.int rng 50)
         (Char.chr (97 + Rng.int rng 26)));
  if group_keys <> [] then
    Buffer.add_string buf (" GROUP BY " ^ String.concat ", " group_keys);
  (* rare set operations, study question 2 *)
  let u = Rng.float rng 1.0 in
  let sql = Buffer.contents buf in
  let sql =
    if u < 0.0057 then sql ^ " UNION ALL " ^ sql
    else if u < 0.0063 then sql ^ " EXCEPT " ^ sql
    else if u < 0.0066 then sql ^ " INTERSECT " ^ sql
    else sql
  in
  (sql, statistical)

let generate rng n =
  List.init n (fun _ ->
      let sql, statistical = synthesize_query rng in
      {
        backend = sample_backend rng;
        sql;
        rows_out = sample_rows_out rng;
        cols_out = sample_cols_out rng ~statistical;
      })

(* --- measured statistics (the regenerated study) ----------------------------- *)

type stats = {
  total : int;
  parse_failures : int;
  backends : (string * int) list;
  join_queries : int; (* queries using >= 1 join *)
  union_queries : int;
  except_queries : int;
  intersect_queries : int;
  joins_per_query : (int * int) list; (* join count -> #queries, ascending *)
  join_kinds : (string * int) list;
  join_conditions : (string * int) list;
  self_join_queries : int;
  equijoin_only_queries : int;
  statistical_queries : int;
  aggregate_uses : (string * int) list;
  size_buckets : (string * int) list;
  rows_buckets : (string * int) list;
  cols_buckets : (string * int) list;
}

let bucketize edges label_of value =
  let rec go = function
    | [] -> label_of None
    | e :: rest -> if value <= e then label_of (Some e) else go rest
  in
  go edges

let bump assoc key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest -> if k = key then (k, n + 1) :: rest else (k, n) :: go rest
  in
  go assoc

let cond_class_name = function
  | Features.Equijoin -> "equijoin"
  | Features.Column_comparison -> "column comparison"
  | Features.Literal_comparison -> "literal comparison"
  | Features.Compound_expression -> "compound expression"
  | Features.No_condition -> "no condition"

let kind_name = function
  | Ast.Inner -> "inner"
  | Ast.Left -> "left"
  | Ast.Right -> "right"
  | Ast.Full -> "full"
  | Ast.Cross -> "cross"

let stats (corpus : qdesc list) : stats =
  let total = List.length corpus in
  let parse_failures = ref 0 in
  let backends = ref [] in
  let join_queries = ref 0 and union_q = ref 0 and except_q = ref 0 and intersect_q = ref 0 in
  let joins_per_query = ref [] in
  let join_kinds = ref [] and join_conditions = ref [] in
  let self_joins = ref 0 and equionly = ref 0 and statistical = ref 0 in
  let agg_uses = ref [] in
  let size_buckets = ref [] and rows_buckets = ref [] and cols_buckets = ref [] in
  let size_label = function
    | Some e -> Fmt.str "<=%d" e
    | None -> ">1000"
  in
  let count_label = function
    | Some e -> Fmt.str "<=%d" e
    | None -> ">1000000"
  in
  List.iter
    (fun q ->
      backends := bump !backends (backend_name q.backend);
      rows_buckets :=
        bump !rows_buckets (bucketize [ 5; 60; 200; 500; 10_000; 1_000_000 ] count_label q.rows_out);
      cols_buckets :=
        bump !cols_buckets (bucketize [ 3; 20; 60; 100; 300; 1_000_000 ] count_label q.cols_out);
      match Features.analyze_sql q.sql with
      | Error _ -> incr parse_failures
      | Ok f ->
        if f.join_count > 0 then incr join_queries;
        if f.uses_union then incr union_q;
        if f.uses_except then incr except_q;
        if f.uses_intersect then incr intersect_q;
        joins_per_query := bump !joins_per_query f.join_count;
        List.iter
          (fun (k, n) ->
            let name = kind_name k in
            for _ = 1 to n do
              join_kinds := bump !join_kinds name
            done)
          f.join_kinds;
        List.iter
          (fun (c, n) ->
            let name = cond_class_name c in
            for _ = 1 to n do
              join_conditions := bump !join_conditions name
            done)
          f.join_conditions;
        if f.has_self_join then incr self_joins;
        if f.equijoins_only then incr equionly;
        if f.is_statistical then incr statistical;
        List.iter
          (fun (a, n) ->
            let name = String.uppercase_ascii (Ast.agg_func_name a) in
            for _ = 1 to n do
              agg_uses := bump !agg_uses name
            done)
          f.aggregates;
        size_buckets :=
          bump !size_buckets (bucketize [ 4; 30; 70; 150; 350; 1000 ] size_label f.size))
    corpus;
  {
    total;
    parse_failures = !parse_failures;
    backends = List.sort (fun (_, a) (_, b) -> compare b a) !backends;
    join_queries = !join_queries;
    union_queries = !union_q;
    except_queries = !except_q;
    intersect_queries = !intersect_q;
    joins_per_query = List.sort compare !joins_per_query;
    join_kinds = List.sort (fun (_, a) (_, b) -> compare b a) !join_kinds;
    join_conditions = List.sort (fun (_, a) (_, b) -> compare b a) !join_conditions;
    self_join_queries = !self_joins;
    equijoin_only_queries = !equionly;
    statistical_queries = !statistical;
    aggregate_uses = List.sort (fun (_, a) (_, b) -> compare b a) !agg_uses;
    size_buckets = !size_buckets;
    rows_buckets = !rows_buckets;
    cols_buckets = !cols_buckets;
  }
