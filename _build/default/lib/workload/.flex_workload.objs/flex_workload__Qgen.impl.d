lib/workload/qgen.ml: Datagen Flex_dp Fmt List String
