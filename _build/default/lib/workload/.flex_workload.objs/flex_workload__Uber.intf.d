lib/workload/uber.mli: Flex_dp Flex_engine
