lib/workload/uber.ml: Array Datagen Flex_dp Flex_engine Float Hashtbl List Option
