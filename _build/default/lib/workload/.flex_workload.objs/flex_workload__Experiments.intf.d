lib/workload/experiments.mli: Flex_core Flex_dp Flex_engine Qgen Representative Tpch
