lib/workload/graph.ml: Flex_dp Flex_engine Hashtbl Option
