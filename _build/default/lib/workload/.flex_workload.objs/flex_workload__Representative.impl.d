lib/workload/representative.ml: Array Flex_baselines Flex_dp Flex_engine Float Fmt List Uber
