lib/workload/datagen.ml: Array Flex_dp Flex_engine Fmt List
