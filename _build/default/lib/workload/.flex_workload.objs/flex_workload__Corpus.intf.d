lib/workload/corpus.mli: Flex_dp
