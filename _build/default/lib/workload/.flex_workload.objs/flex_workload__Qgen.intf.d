lib/workload/qgen.mli: Flex_dp
