lib/workload/representative.mli: Flex_dp Flex_engine
