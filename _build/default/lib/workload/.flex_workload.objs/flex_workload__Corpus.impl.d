lib/workload/corpus.ml: Array Buffer Char Datagen Flex_dp Flex_sql Float Fmt List String
