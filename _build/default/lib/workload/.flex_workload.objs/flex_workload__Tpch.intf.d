lib/workload/tpch.mli: Flex_dp Flex_engine
