lib/workload/graph.mli: Flex_dp Flex_engine
