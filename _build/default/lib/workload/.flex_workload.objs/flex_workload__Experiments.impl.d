lib/workload/experiments.ml: Array Flex_core Flex_dp Flex_engine Float List Option Qgen Representative Tpch
