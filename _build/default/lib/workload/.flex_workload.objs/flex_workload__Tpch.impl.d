lib/workload/tpch.ml: Array Datagen Flex_dp Flex_engine Float Fmt List
