lib/workload/datagen.mli: Flex_dp Flex_engine
