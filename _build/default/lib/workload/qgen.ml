module Rng = Flex_dp.Rng

(* Generator for the counting-query workload behind Figures 3, 4, 6 and 7
   and Table 4: templated counting/histogram queries over the Uber-like
   schema with filters of widely varying selectivity, so population sizes
   span the paper's range. Each query is labelled with the Table 4 category
   it instantiates. *)

type category =
  | Normal
  | Individual_filter (* filters on one person's data *)
  | Low_population (* heavily restrictive filters *)
  | Many_to_many (* m:n join with large mf *)

let category_name = function
  | Normal -> "normal"
  | Individual_filter -> "filter on individual's data"
  | Low_population -> "low-population statistics"
  | Many_to_many -> "many-to-many join"

type relationship = One_to_one | One_to_many | Many_to_many

let relationship_name = function
  | One_to_one -> "one-to-one"
  | One_to_many -> "one-to-many"
  | Many_to_many -> "many-to-many"

type t = {
  id : int;
  sql : string;
  has_join : bool;
  is_histogram : bool;
  category : category;
  relationship : relationship option; (* of the query's join, when any *)
  population_sql : string; (* count of distinct primary-entity rows used *)
}

let statuses = [ "completed"; "cancelled"; "requested" ]

(* A random date window whose width drives selectivity. *)
let date_window rng =
  let widths = [| 3; 7; 14; 30; 60; 120; 240; 366 |] in
  let w = Rng.choose rng widths in
  let start = Rng.int rng (max 1 (366 - w)) in
  (Datagen.day_of_2016 start, Datagen.day_of_2016 (start + w))

(* A broad filter: wide date window, optional status — used by templates that
   want large populations (e.g. the public-join ones). *)
let trips_filter_wide rng =
  let w = 90 + Rng.int rng 270 in
  let start = Rng.int rng (max 1 (366 - w)) in
  let d1 = Datagen.day_of_2016 start and d2 = Datagen.day_of_2016 (start + w) in
  let base = Fmt.str "t.requested_at >= '%s' AND t.requested_at < '%s'" d1 d2 in
  if Rng.bernoulli rng 0.4 then
    Fmt.str "%s AND t.status = '%s'" base (Datagen.pick rng statuses)
  else base

let trips_filter rng ~n_cities ~tight =
  let clauses = ref [] in
  let addc c = clauses := c :: !clauses in
  let d1, d2 = date_window rng in
  addc (Fmt.str "t.requested_at >= '%s' AND t.requested_at < '%s'" d1 d2);
  if tight || Rng.bernoulli rng 0.7 then
    addc (Fmt.str "t.city_id = %d" (1 + Rng.int rng n_cities));
  if tight || Rng.bernoulli rng 0.5 then
    addc (Fmt.str "t.status = '%s'" (Datagen.pick rng statuses));
  if tight then addc (Fmt.str "t.fare > %d" (40 + Rng.int rng 55));
  String.concat " AND " (List.rev !clauses)

let make ?relationship id sql ~has_join ~is_histogram ~category ~population_sql =
  { id; sql; has_join; is_histogram; category; relationship; population_sql }

(* One random query. [n_cities]/[n_drivers]/[n_users] describe the generated
   database so filters stay in-domain. *)
let generate_one rng ~id ~n_cities ~n_drivers ~n_users =
  let pop_from where from = Fmt.str "SELECT COUNT(DISTINCT t.id) AS n FROM %s WHERE %s" from where in
  let template = Rng.int rng 14 in
  match template with
  | 13 ->
    (* one-to-one join on primary keys: drivers x analytics *)
    let threshold = Rng.int rng 25 in
    let from = "drivers d JOIN analytics a ON d.id = a.driver_id" in
    let where =
      Fmt.str "d.status = 'active' AND a.completed_trips >= %d" threshold
    in
    {
      id;
      sql = Fmt.str "SELECT COUNT(*) FROM %s WHERE %s" from where;
      has_join = true;
      is_histogram = false;
      category = Normal;
      relationship = Some One_to_one;
      population_sql =
        Fmt.str "SELECT COUNT(DISTINCT d.id) AS n FROM %s WHERE %s" from where;
    }
  | 0 | 1 | 2 ->
    (* no-join scalar count over trips *)
    let where = trips_filter rng ~n_cities ~tight:false in
    make id
      (Fmt.str "SELECT COUNT(*) FROM trips t WHERE %s" where)
      ~has_join:false ~is_histogram:false ~category:Normal
      ~population_sql:(pop_from where "trips t")
  | 3 ->
    (* no-join histogram by status *)
    let where = trips_filter rng ~n_cities ~tight:false in
    make id
      (Fmt.str "SELECT t.status, COUNT(*) FROM trips t WHERE %s GROUP BY t.status" where)
      ~has_join:false ~is_histogram:true ~category:Normal
      ~population_sql:(pop_from where "trips t")
  | 4 | 5 ->
    (* low-population scalar count *)
    let where = trips_filter rng ~n_cities ~tight:true in
    make id
      (Fmt.str "SELECT COUNT(*) FROM trips t WHERE %s" where)
      ~has_join:false ~is_histogram:false ~category:Low_population
      ~population_sql:(pop_from where "trips t")
  | 6 ->
    (* low-population statistics behind a join *)
    let where = trips_filter rng ~n_cities ~tight:true in
    let from = "trips t JOIN drivers d ON t.driver_id = d.id" in
    let where = Fmt.str "%s AND d.vehicle = 'motorbike'" where in
    make id ~relationship:One_to_many
      (Fmt.str "SELECT COUNT(*) FROM %s WHERE %s" from where)
      ~has_join:true ~is_histogram:false ~category:Low_population
      ~population_sql:(pop_from where from)
  | 7 ->
    (* filter on an individual *)
    let driver = 1 + Rng.int rng n_drivers in
    let where = Fmt.str "t.driver_id = %d" driver in
    make id
      (Fmt.str "SELECT COUNT(*) FROM trips t WHERE %s" where)
      ~has_join:false ~is_histogram:false ~category:Individual_filter
      ~population_sql:(pop_from where "trips t")
  | 8 ->
    (* one-to-many join trips->drivers *)
    let where = trips_filter rng ~n_cities ~tight:false in
    let dstatus = Datagen.pick rng [ "active"; "inactive" ] in
    let from = "trips t JOIN drivers d ON t.driver_id = d.id" in
    let where = Fmt.str "%s AND d.status = '%s'" where dstatus in
    make id ~relationship:One_to_many
      (Fmt.str "SELECT COUNT(*) FROM %s WHERE %s" from where)
      ~has_join:true ~is_histogram:false ~category:Normal
      ~population_sql:(pop_from where from)
  | 9 ->
    (* scalar count through the public cities table; broad population *)
    let where = trips_filter_wide rng in
    let country = Datagen.pick rng [ "us"; "us"; "us"; "au"; "vn" ] in
    let from = "trips t JOIN cities c ON t.city_id = c.id" in
    let where = Fmt.str "%s AND c.country = '%s'" where country in
    make id ~relationship:One_to_many
      (Fmt.str "SELECT COUNT(*) FROM %s WHERE %s" from where)
      ~has_join:true ~is_histogram:false ~category:Normal
      ~population_sql:(pop_from where from)
  | 10 ->
    (* histogram over public city names: trips x cities (public) *)
    let where = trips_filter_wide rng in
    let from = "trips t JOIN cities c ON t.city_id = c.id" in
    make id ~relationship:One_to_many
      (Fmt.str "SELECT c.name, COUNT(*) FROM %s WHERE %s GROUP BY c.name" from where)
      ~has_join:true ~is_histogram:true ~category:Normal
      ~population_sql:(pop_from where from)
  | 11 ->
    (* many-to-many self join on rider: riders with both outcomes *)
    let d1, d2 = date_window rng in
    let from = "trips t JOIN trips t2 ON t.rider_id = t2.rider_id" in
    let where =
      Fmt.str
        "t.status = 'completed' AND t2.status = 'cancelled' AND t.requested_at >= '%s' \
         AND t.requested_at < '%s'"
        d1 d2
    in
    make id ~relationship:Many_to_many
      (Fmt.str "SELECT COUNT(*) FROM %s WHERE %s" from where)
      ~has_join:true ~is_histogram:false ~category:Many_to_many
      ~population_sql:(pop_from where from)
  | _ ->
    (* users joined with tags (one-to-many, private-private) *)
    let tag = Datagen.pick rng [ "duplicate_account"; "fraud_suspect"; "vip" ] in
    let d = Datagen.day_of_2016 (Rng.int rng 300) in
    let from = "users u JOIN user_tags g ON u.id = g.user_id" in
    let where = Fmt.str "g.tag = '%s' AND g.tagged_at > '%s'" tag d in
    ignore n_users;
    {
      id;
      sql = Fmt.str "SELECT COUNT(*) FROM %s WHERE %s" from where;
      has_join = true;
      is_histogram = false;
      category = Normal;
      relationship = Some One_to_many;
      population_sql = Fmt.str "SELECT COUNT(DISTINCT u.id) AS n FROM %s WHERE %s" from where;
    }

let generate rng ~count ~n_cities ~n_drivers ~n_users =
  List.init count (fun id -> generate_one rng ~id ~n_cities ~n_drivers ~n_users)
