module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng

(** A scaled-down TPC-H substrate (§5.2.1): the 8 benchmark tables with the
    specification's cardinality ratios, and the five counting queries of the
    paper's Table 3 transcribed over it. Region, nation and part are public;
    customer, orders, lineitem, supplier and partsupp are private — exactly
    the paper's marking. *)

val generate : ?scale:float -> Rng.t -> Database.t * Metrics.t
(** [scale] is the TPC-H scale factor (default 0.005; SF 1 is ~6M lineitem
    rows). Every nation is guaranteed at least two suppliers so
    nation-filtered queries (Q21) have data at tiny scales. *)

type query = { name : string; description : string; joins : int; sql : string }

val queries : query list
(** Q1, Q4, Q13, Q16, Q21. Correlated subqueries are rewritten as joins
    (the analysis sees the same shape; our engine does not evaluate
    correlated EXISTS). *)

val population_sql : string -> string
(** Companion query counting the distinct primary-entity rows a query uses
    (the §5.2 population-size metric). *)
