module Value = Flex_engine.Value
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Rng = Flex_dp.Rng
module Flex = Flex_core.Flex
module Errors = Flex_core.Errors

(* Shared drivers for the paper's evaluation experiments (§5): population
   sizes, median relative errors, error-bin histograms, and the FLEX vs
   wPINQ comparison. *)

(* Population size of a query (§5.2): the number of distinct primary-entity
   rows used to compute it, obtained by running the query's population
   companion. *)
let population_of db sql =
  match Executor.run_sql db sql with
  | Ok { rows = [ [| v |] ]; _ } -> Option.value ~default:0 (Value.to_int v)
  | Ok _ -> 0
  | Error _ -> 0

(* Median of a float list; None when empty. *)
let median = function
  | [] -> None
  | xs ->
    let a = Array.of_list (List.sort compare xs) in
    let n = Array.length a in
    Some (if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0)

(* Median relative error of a query over [runs] independent releases. *)
let flex_median_error ~runs ~rng ~options ~db ~metrics sql :
    (float, Errors.reason) result =
  let rec go i acc =
    if i >= runs then Ok acc
    else
      match Flex.run_sql ~rng ~options ~db ~metrics sql with
      | Error r -> Error r
      | Ok release -> (
        match Flex.median_relative_error release with
        | Some e -> go (i + 1) (e :: acc)
        | None -> go (i + 1) acc)
  in
  match go 0 [] with
  | Error r -> Error r
  | Ok errors -> (
    match median errors with
    | Some m -> Ok m
    | None -> Error (Errors.Analysis_error "query produced no aggregate cells"))

type measurement = {
  query : Qgen.t;
  population : int;
  median_error : float; (* percent; may be infinite *)
}

type workload_outcome = {
  measurements : measurement list;
  rejected : (Qgen.t * Errors.reason) list;
}

let run_workload ?(runs = 3) ~rng ~options ~db ~metrics (queries : Qgen.t list) :
    workload_outcome =
  let measurements = ref [] and rejected = ref [] in
  List.iter
    (fun (q : Qgen.t) ->
      match flex_median_error ~runs ~rng ~options ~db ~metrics q.sql with
      | Error r -> rejected := (q, r) :: !rejected
      | Ok median_error ->
        let population = population_of db q.population_sql in
        measurements := { query = q; population; median_error } :: !measurements)
    queries;
  { measurements = List.rev !measurements; rejected = List.rev !rejected }

(* --- error-bin histograms (Figures 6 and 7) ------------------------------- *)

let error_bin_labels = [ "<1%"; "1-5%"; "5-10%"; "10-25%"; "25-100%"; "More" ]

let error_bin e =
  if e < 1.0 then "<1%"
  else if e < 5.0 then "1-5%"
  else if e < 10.0 then "5-10%"
  else if e < 25.0 then "10-25%"
  else if e <= 100.0 then "25-100%"
  else "More"

let error_bins (errors : float list) : (string * float) list =
  let total = float_of_int (List.length errors) in
  List.map
    (fun label ->
      let n = List.length (List.filter (fun e -> error_bin e = label) errors) in
      (label, if total = 0.0 then 0.0 else 100.0 *. float_of_int n /. total))
    error_bin_labels

(* Population-size buckets (Figure 3). *)
let population_bucket_labels = [ "<100"; "100-1K"; "1K-10K"; ">10K" ]

let population_bucket n =
  if n < 100 then "<100" else if n < 1000 then "100-1K" else if n < 10_000 then "1K-10K" else ">10K"

let population_buckets (pops : int list) : (string * int) list =
  List.map
    (fun label ->
      (label, List.length (List.filter (fun p -> population_bucket p = label) pops)))
    population_bucket_labels

(* --- Table 4: categorising high-error queries ------------------------------- *)

let high_error_categories (outcome : workload_outcome) ~threshold =
  let high =
    List.filter (fun m -> m.median_error > threshold) outcome.measurements
  in
  let total = float_of_int (List.length high) in
  let share cat =
    let n =
      List.length (List.filter (fun m -> m.query.Qgen.category = cat) high)
    in
    if total = 0.0 then 0.0 else 100.0 *. float_of_int n /. total
  in
  ( List.length high,
    [
      (Qgen.category_name Qgen.Individual_filter, share Qgen.Individual_filter);
      (Qgen.category_name Qgen.Low_population, share Qgen.Low_population);
      (Qgen.category_name Qgen.Many_to_many, share Qgen.Many_to_many);
      (Qgen.category_name Qgen.Normal, share Qgen.Normal);
    ] )

(* --- Table 5: FLEX vs wPINQ on the representative programs ------------------- *)

type comparison = {
  program : Representative.program;
  median_population : float;
  wpinq_error : float;
  flex_error : float;
}

(* wPINQ error is judged against the *true SQL answer* (as in the paper), so
   the bias introduced by wPINQ's weight rescaling counts against it. *)
let wpinq_median_error ~runs ~rng ~epsilon db (p : Representative.program) =
  match Executor.run_sql db p.Representative.sql with
  | Error _ -> infinity
  | Ok { rows; columns } ->
    let agg_index = List.length columns - 1 in
    let cell row = Option.value ~default:0.0 (Value.to_float row.(agg_index)) in
    let truth_bins =
      if p.Representative.is_histogram then
        List.map (fun row -> (row.(0), cell row)) rows
      else
        [
          ( Value.Null,
            match rows with [ row ] -> cell row | _ -> 0.0 );
        ]
    in
    let errors = ref [] in
    for _ = 1 to runs do
      let noisy_bins = p.Representative.wpinq db rng ~epsilon in
      List.iter
        (fun (k, truth) ->
          let noisy = try List.assoc k noisy_bins with Not_found -> 0.0 in
          let e =
            if truth = 0.0 then if noisy = 0.0 then 0.0 else infinity
            else Float.abs (noisy -. truth) /. Float.abs truth *. 100.0
          in
          errors := e :: !errors)
        truth_bins
    done;
    Option.value ~default:infinity (median !errors)

let run_comparison ?(runs = 25) ~rng ~options ~db ~metrics () : comparison list =
  List.filter_map
    (fun (p : Representative.program) ->
      match
        flex_median_error ~runs ~rng ~options ~db ~metrics p.Representative.sql
      with
      | Error _ -> None
      | Ok flex_error ->
        let wpinq_error =
          wpinq_median_error ~runs ~rng
            ~epsilon:options.Flex.epsilon db p
        in
        (* median population: the median true bin size *)
        let median_population =
          match Executor.run_sql db p.Representative.sql with
          | Ok { rows; columns } ->
            let agg_index = List.length columns - 1 in
            let counts =
              List.filter_map
                (fun row -> Value.to_float row.(agg_index))
                rows
            in
            Option.value ~default:0.0 (median counts)
          | Error _ -> 0.0
        in
        Some { program = p; median_population; wpinq_error; flex_error })
    Representative.programs

(* --- Figure 5: TPC-H ---------------------------------------------------------- *)

type tpch_measurement = {
  tq : Tpch.query;
  population : int;
  median_error : float;
}

let run_tpch ?(runs = 5) ~rng ~options ~db ~metrics () :
    (tpch_measurement list * (string * Errors.reason) list) =
  let ok = ref [] and bad = ref [] in
  List.iter
    (fun (tq : Tpch.query) ->
      match flex_median_error ~runs ~rng ~options ~db ~metrics tq.Tpch.sql with
      | Error r -> bad := (tq.Tpch.name, r) :: !bad
      | Ok median_error ->
        let population = population_of db (Tpch.population_sql tq.Tpch.name) in
        ok := { tq; population; median_error } :: !ok)
    Tpch.queries;
  (List.rev !ok, List.rev !bad)
