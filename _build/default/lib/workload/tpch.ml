module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng

(* A scaled-down TPC-H substrate (§5.2.1): the 8 benchmark tables with the
   specification's cardinality ratios, and the five counting queries of
   Table 3 (Q1, Q4, Q13, Q16, Q21) transcribed over it. Customer, orders,
   lineitem, supplier and partsupp are private; region, nation and part are
   public, exactly as the paper marks them. *)

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nations =
  [|
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1); ("EGYPT", 4);
    ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3); ("INDIA", 2); ("INDONESIA", 2);
    ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0);
    ("MOROCCO", 0); ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
    ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3);
    ("UNITED STATES", 1);
  |]

let brands = Array.init 25 (fun i -> Fmt.str "Brand#%d%d" ((i / 5) + 1) ((i mod 5) + 1))

let part_types =
  let t1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |] in
  let t2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |] in
  let t3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |] in
  Array.init
    (Array.length t1 * Array.length t2 * Array.length t3)
    (fun i ->
      let a = i mod Array.length t1 in
      let b = i / Array.length t1 mod Array.length t2 in
      let c = i / (Array.length t1 * Array.length t2) in
      Fmt.str "%s %s %s" t1.(a) t2.(b) t3.(c))

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let date rng ~from_year ~to_year =
  let y = from_year + Rng.int rng (to_year - from_year + 1) in
  let m = 1 + Rng.int rng 12 in
  let d = 1 + Rng.int rng 28 in
  Fmt.str "%04d-%02d-%02d" y m d

(* Scale factor 1 cardinalities, scaled down. *)
type sizes = {
  supplier : int;
  part : int;
  partsupp_per_part : int;
  customer : int;
  orders : int;
  lineitem_per_order_max : int;
}

let sizes_of_scale sf =
  {
    (* at least 2 suppliers per nation so every nation-filtered query
       (e.g. Q21) has a non-empty answer even at tiny scales *)
    supplier = max 50 (int_of_float (10_000.0 *. sf));
    part = max 50 (int_of_float (200_000.0 *. sf));
    partsupp_per_part = 4;
    customer = max 30 (int_of_float (150_000.0 *. sf));
    orders = max 100 (int_of_float (1_500_000.0 *. sf));
    lineitem_per_order_max = 7;
  }

let generate ?(scale = 0.005) rng : Database.t * Metrics.t =
  let sz = sizes_of_scale scale in
  let region =
    Table.create ~name:"region" ~columns:[ "r_regionkey"; "r_name" ]
      (List.init (Array.length regions) (fun i ->
           [| Value.Int i; Value.String regions.(i) |]))
  in
  let nation =
    Table.create ~name:"nation"
      ~columns:[ "n_nationkey"; "n_name"; "n_regionkey" ]
      (List.init (Array.length nations) (fun i ->
           let name, r = nations.(i) in
           [| Value.Int i; Value.String name; Value.Int r |]))
  in
  let supplier =
    Table.create ~name:"supplier"
      ~columns:[ "s_suppkey"; "s_name"; "s_nationkey"; "s_acctbal" ]
      (List.init sz.supplier (fun i ->
           [|
             Value.Int (i + 1);
             Value.String (Fmt.str "Supplier#%09d" (i + 1));
             (* round-robin nations so every nation has suppliers (Q21) *)
             Value.Int (i mod Array.length nations);
             Value.Float (Float.round (Rng.float rng 10_000.0) /. 1.0);
           |]))
  in
  let part =
    Table.create ~name:"part"
      ~columns:[ "p_partkey"; "p_name"; "p_brand"; "p_type"; "p_size" ]
      (List.init sz.part (fun i ->
           [|
             Value.Int (i + 1);
             Value.String (Fmt.str "part %d" (i + 1));
             Value.String (Datagen.pick rng (Array.to_list brands));
             Value.String (Datagen.pick rng (Array.to_list part_types));
             Value.Int (1 + Rng.int rng 50);
           |]))
  in
  let partsupp =
    Table.create ~name:"partsupp"
      ~columns:[ "ps_partkey"; "ps_suppkey"; "ps_availqty"; "ps_supplycost" ]
      (List.concat
         (List.init sz.part (fun p ->
              List.init sz.partsupp_per_part (fun j ->
                  [|
                    Value.Int (p + 1);
                    Value.Int (1 + ((p + (j * (sz.supplier / 4 + 1))) mod sz.supplier));
                    Value.Int (Rng.int rng 10_000);
                    Value.Float (Rng.float rng 1000.0);
                  |]))))
  in
  let customer =
    Table.create ~name:"customer"
      ~columns:[ "c_custkey"; "c_name"; "c_nationkey"; "c_mktsegment"; "c_acctbal" ]
      (List.init sz.customer (fun i ->
           [|
             Value.Int (i + 1);
             Value.String (Fmt.str "Customer#%09d" (i + 1));
             Value.Int (Rng.int rng (Array.length nations));
             Value.String
               (Datagen.pick rng [ "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" ]);
             Value.Float (Rng.float rng 10_000.0 -. 1000.0);
           |]))
  in
  (* about a third of customers never order, per the Q13 motivation *)
  let orders_rows = ref [] in
  let lineitem_rows = ref [] in
  let orderkey = ref 0 in
  for _ = 1 to sz.orders do
    incr orderkey;
    let ok = !orderkey in
    let cust = 1 + Rng.int rng ((sz.customer * 2 / 3) + 1) in
    let odate = date rng ~from_year:1992 ~to_year:1998 in
    let status = if odate < "1995-06-17" then "F" else Datagen.pick rng [ "O"; "P" ] in
    orders_rows :=
      [|
        Value.Int ok;
        Value.Int cust;
        Value.String status;
        Value.Float (Rng.float rng 500_000.0);
        Value.String odate;
        Value.String (Datagen.pick rng (Array.to_list priorities));
      |]
      :: !orders_rows;
    let nlines = 1 + Rng.int rng sz.lineitem_per_order_max in
    for line = 1 to nlines do
      let ship = date rng ~from_year:1992 ~to_year:1998 in
      let commit = date rng ~from_year:1992 ~to_year:1998 in
      let receipt = date rng ~from_year:1992 ~to_year:1998 in
      lineitem_rows :=
        [|
          Value.Int ok;
          Value.Int line;
          Value.Int (1 + Rng.int rng sz.part);
          Value.Int (1 + Rng.int rng sz.supplier);
          Value.Int (1 + Rng.int rng 50);
          Value.Float (Rng.float rng 100_000.0);
          Value.String (Datagen.pick rng [ "R"; "A"; "N" ]);
          Value.String (Datagen.pick rng [ "O"; "F" ]);
          Value.String ship;
          Value.String commit;
          Value.String receipt;
        |]
        :: !lineitem_rows
    done
  done;
  let orders =
    Table.create ~name:"orders"
      ~columns:
        [ "o_orderkey"; "o_custkey"; "o_orderstatus"; "o_totalprice"; "o_orderdate"; "o_orderpriority" ]
      (List.rev !orders_rows)
  in
  let lineitem =
    Table.create ~name:"lineitem"
      ~columns:
        [
          "l_orderkey"; "l_linenumber"; "l_partkey"; "l_suppkey"; "l_quantity";
          "l_extendedprice"; "l_returnflag"; "l_linestatus"; "l_shipdate";
          "l_commitdate"; "l_receiptdate";
        ]
      (List.rev !lineitem_rows)
  in
  let db =
    Database.of_tables
      [ region; nation; supplier; part; partsupp; customer; orders; lineitem ]
  in
  let metrics = Metrics.compute db in
  List.iter (Metrics.set_public metrics) [ "region"; "nation"; "part" ];
  List.iter
    (fun (table, column) -> Metrics.set_primary_key metrics ~table ~column)
    [ ("region", "r_regionkey"); ("nation", "n_nationkey");
      ("supplier", "s_suppkey"); ("part", "p_partkey");
      ("customer", "c_custkey"); ("orders", "o_orderkey") ];
  (db, metrics)

(* The five counting queries of Table 3, with correlated subqueries
   rewritten as joins (our engine does not evaluate correlated EXISTS; the
   join form preserves the query shape the analysis sees). *)
type query = { name : string; description : string; joins : int; sql : string }

let queries =
  [
    {
      name = "Q1";
      description = "Billed, shipped, and returned business";
      joins = 0;
      sql =
        "SELECT l_returnflag, l_linestatus, COUNT(*) AS count_order FROM lineitem \
         WHERE l_shipdate <= '1998-09-01' GROUP BY l_returnflag, l_linestatus";
    };
    {
      name = "Q4";
      description = "Priority system status and customer satisfaction";
      joins = 1;
      sql =
        "SELECT o.o_orderpriority, COUNT(DISTINCT o.o_orderkey) AS order_count \
         FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey \
         WHERE o.o_orderdate >= '1993-07-01' AND o.o_orderdate < '1993-10-01' \
         AND l.l_commitdate < l.l_receiptdate GROUP BY o.o_orderpriority";
    };
    {
      name = "Q13";
      description = "Relationship between customers and order size";
      joins = 1;
      sql =
        "SELECT c_count, COUNT(*) AS custdist FROM \
         (SELECT c.c_custkey AS ck, COUNT(o.o_orderkey) AS c_count \
         FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey \
         GROUP BY c.c_custkey) c_orders GROUP BY c_count";
    };
    {
      name = "Q16";
      description = "Suppliers capable of supplying various part types";
      joins = 1;
      sql =
        "SELECT p.p_brand, p.p_type, p.p_size, COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt \
         FROM partsupp ps JOIN part p ON p.p_partkey = ps.ps_partkey \
         WHERE p.p_brand <> 'Brand#45' AND p.p_size IN (1, 4, 7, 10, 15, 19, 23, 45) \
         GROUP BY p.p_brand, p.p_type, p.p_size";
    };
    {
      name = "Q21";
      description = "Suppliers with late shipping times for required parts";
      joins = 3;
      sql =
        "SELECT s.s_name, COUNT(*) AS numwait FROM supplier s \
         JOIN lineitem l1 ON s.s_suppkey = l1.l_suppkey \
         JOIN orders o ON o.o_orderkey = l1.l_orderkey \
         JOIN nation n ON s.s_nationkey = n.n_nationkey \
         WHERE o.o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
         AND n.n_name = 'SAUDI ARABIA' GROUP BY s.s_name";
    };
  ]

(* Population query: distinct primary-entity rows feeding each query. *)
let population_sql = function
  | "Q1" ->
    "SELECT COUNT(*) AS n FROM lineitem WHERE l_shipdate <= '1998-09-01'"
  | "Q4" ->
    "SELECT COUNT(DISTINCT o.o_orderkey) AS n FROM orders o JOIN lineitem l ON \
     o.o_orderkey = l.l_orderkey WHERE o.o_orderdate >= '1993-07-01' AND \
     o.o_orderdate < '1993-10-01' AND l.l_commitdate < l.l_receiptdate"
  | "Q13" -> "SELECT COUNT(*) AS n FROM customer"
  | "Q16" ->
    "SELECT COUNT(DISTINCT ps.ps_suppkey) AS n FROM partsupp ps JOIN part p ON \
     p.p_partkey = ps.ps_partkey WHERE p.p_brand <> 'Brand#45' AND \
     p.p_size IN (1, 4, 7, 10, 15, 19, 23, 45)"
  | "Q21" ->
    "SELECT COUNT(*) AS n FROM supplier s JOIN lineitem l1 ON s.s_suppkey = \
     l1.l_suppkey JOIN orders o ON o.o_orderkey = l1.l_orderkey JOIN nation n ON \
     s.s_nationkey = n.n_nationkey WHERE o.o_orderstatus = 'F' AND \
     l1.l_receiptdate > l1.l_commitdate AND n.n_name = 'SAUDI ARABIA'"
  | name -> invalid_arg ("Tpch.population_sql: unknown query " ^ name)
