module Value = Flex_engine.Value
module Database = Flex_engine.Database
module Rng = Flex_dp.Rng

(** The six representative counting queries of §5.5 (Table 5), transcribed
    over the Uber-like schema: three scalar counts and three histograms,
    each expressed both in SQL (for FLEX) and as a hand-written wPINQ
    program, as in the paper. Joins against the public cities table use
    wPINQ's select-style lookup so no budget protects public rows. *)

type program = {
  name : string;  (** P1..P6 *)
  description : string;
  sql : string;
  is_histogram : bool;
  wpinq : Database.t -> Rng.t -> epsilon:float -> (Value.t * float) list;
      (** (bin key, noisy count) pairs; a single Null-keyed pair for scalar
          counts. Errors are judged against the true SQL answer, so wPINQ's
          weight-rescaling bias counts against it. *)
}

val programs : program list
