module Rng = Flex_dp.Rng

(** Reproduction of the §2 empirical study: the paper's 8.1M production
    queries are proprietary, so a synthetic corpus is *sampled from the
    published marginal distributions* (study questions 1-8) and then
    re-measured with our parser + feature extractor. *)

type backend = Vertica | Postgres | Mysql | Hive | Presto | Other_backend

val backend_name : backend -> string

type qdesc = {
  backend : backend;
  sql : string;
  rows_out : int;  (** result-size metadata (study question 8) *)
  cols_out : int;
}

val generate : Rng.t -> int -> qdesc list

(** Statistics measured from a corpus (regenerating the study's charts). *)
type stats = {
  total : int;
  parse_failures : int;
  backends : (string * int) list;
  join_queries : int;
  union_queries : int;
  except_queries : int;
  intersect_queries : int;
  joins_per_query : (int * int) list;  (** join count -> #queries *)
  join_kinds : (string * int) list;
  join_conditions : (string * int) list;
  self_join_queries : int;
  equijoin_only_queries : int;
  statistical_queries : int;
  aggregate_uses : (string * int) list;
  size_buckets : (string * int) list;
  rows_buckets : (string * int) list;
  cols_buckets : (string * int) list;
}

val stats : qdesc list -> stats
