module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Rng = Flex_dp.Rng
module Wpinq = Flex_baselines.Wpinq

(* The six representative counting queries of §5.5 (Table 5), transcribed
   over the Uber-like schema: three scalar counts and three histograms, each
   expressed both in SQL (for FLEX) and as a wPINQ program (hand-transcribed,
   as in the paper). Joins against the public cities table use wPINQ's
   select-style lookup so no budget protects public rows — the same fairness
   treatment the paper applies. *)

type program = {
  name : string;
  description : string;
  sql : string;
  is_histogram : bool;
  (* wPINQ transcription: returns (bin key, noisy count) pairs (a single
     pair keyed Null for scalar counts). Errors are judged against the true
     SQL answer, so wPINQ's weight-rescaling bias counts against it, as in
     the paper's §5.5 comparison. *)
  wpinq : Database.t -> Rng.t -> epsilon:float -> (Value.t * float) list;
}

let sf = match Uber.city_id "san francisco" with Some i -> i | None -> 1
let hanoi = match Uber.city_id "hanoi" with Some i -> i | None -> 2
let hong_kong = match Uber.city_id "hong kong" with Some i -> i | None -> 3
let sydney = match Uber.city_id "sydney" with Some i -> i | None -> 4

let col table name =
  match Table.column_index table name with
  | Some i -> i
  | None -> invalid_arg ("Representative: no column " ^ name)

(* wPINQ scalar count helper: one bin keyed Null. *)
let scalar rng ~epsilon ds = [ (Value.Null, Wpinq.noisy_count rng ~epsilon ds) ]

let histogram rng ~epsilon ~key ds = Wpinq.noisy_histogram rng ~epsilon ~key ds

let programs : program list =
  [
    {
      name = "P1";
      description =
        "Count distinct drivers who completed a trip in San Francisco yet \
         enrolled as a driver in a different city";
      sql =
        Fmt.str
          "SELECT COUNT(DISTINCT d.id) FROM trips t JOIN drivers d ON \
           t.driver_id = d.id WHERE t.status = 'completed' AND t.city_id = %d \
           AND d.signup_city_id <> %d"
          sf sf;
      is_histogram = false;
      wpinq =
        (fun db rng ~epsilon ->
          let trips = Database.find db "trips" and drivers = Database.find db "drivers" in
          let t_driver = col trips "driver_id"
          and t_status = col trips "status"
          and t_city = col trips "city_id" in
          let d_id = col drivers "id" and d_signup = col drivers "signup_city_id" in
          let lhs =
            Wpinq.of_table trips
            |> Wpinq.filter (fun r ->
                 Value.equal r.(t_status) (Value.String "completed")
                 && Value.equal r.(t_city) (Value.Int sf))
          in
          let rhs =
            Wpinq.of_table drivers
            |> Wpinq.filter (fun r -> not (Value.equal r.(d_signup) (Value.Int sf)))
          in
          let joined =
            Wpinq.join
              ~key_left:(fun r -> r.(t_driver))
              ~key_right:(fun r -> r.(d_id))
              ~combine:(fun _ d -> [| d.(d_id) |])
              lhs rhs
          in
          (* distinct drivers: collapse to driver id, cap weights at 1 *)
          let per_driver = Wpinq.true_histogram ~key:(fun r -> r.(0)) joined in
          let capped =
            { Wpinq.rows = List.map (fun (k, w) -> ([| k |], Float.min 1.0 w)) per_driver }
          in
          scalar rng ~epsilon capped);
    };
    {
      name = "P2";
      description =
        "Count accounts that are active and were tagged after June 6 as \
         duplicate accounts";
      sql =
        "SELECT COUNT(*) FROM users u JOIN user_tags g ON u.id = g.user_id \
         WHERE u.status = 'active' AND g.tag = 'duplicate_account' AND \
         g.tagged_at > '2016-06-06'";
      is_histogram = false;
      wpinq =
        (fun db rng ~epsilon ->
          let users = Database.find db "users" and tags = Database.find db "user_tags" in
          let u_id = col users "id" and u_status = col users "status" in
          let g_user = col tags "user_id"
          and g_tag = col tags "tag"
          and g_at = col tags "tagged_at" in
          let lhs =
            Wpinq.of_table users
            |> Wpinq.filter (fun r -> Value.equal r.(u_status) (Value.String "active"))
          in
          let rhs =
            Wpinq.of_table tags
            |> Wpinq.filter (fun r ->
                 Value.equal r.(g_tag) (Value.String "duplicate_account")
                 && Value.compare r.(g_at) (Value.String "2016-06-06") > 0)
          in
          let joined =
            Wpinq.join
              ~key_left:(fun r -> r.(u_id))
              ~key_right:(fun r -> r.(g_user))
              ~combine:(fun u _ -> u)
              lhs rhs
          in
          scalar rng ~epsilon joined);
    };
    {
      name = "P3";
      description =
        "Count motorbike drivers in Hanoi who are currently active and have \
         completed 10 or more trips";
      sql =
        Fmt.str
          "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = \
           a.driver_id WHERE d.vehicle = 'motorbike' AND d.city_id = %d AND \
           d.status = 'active' AND a.completed_trips >= 10"
          hanoi;
      is_histogram = false;
      wpinq =
        (fun db rng ~epsilon ->
          let drivers = Database.find db "drivers"
          and analytics = Database.find db "analytics" in
          let d_id = col drivers "id"
          and d_vehicle = col drivers "vehicle"
          and d_city = col drivers "city_id"
          and d_status = col drivers "status" in
          let a_driver = col analytics "driver_id"
          and a_trips = col analytics "completed_trips" in
          let lhs =
            Wpinq.of_table drivers
            |> Wpinq.filter (fun r ->
                 Value.equal r.(d_vehicle) (Value.String "motorbike")
                 && Value.equal r.(d_city) (Value.Int hanoi)
                 && Value.equal r.(d_status) (Value.String "active"))
          in
          let rhs =
            Wpinq.of_table analytics
            |> Wpinq.filter (fun r -> Value.compare r.(a_trips) (Value.Int 10) >= 0)
          in
          let joined =
            Wpinq.join
              ~key_left:(fun r -> r.(d_id))
              ~key_right:(fun r -> r.(a_driver))
              ~combine:(fun d _ -> d)
              lhs rhs
          in
          scalar rng ~epsilon joined);
    };
    {
      name = "P4";
      description = "Histogram: daily trips by city (for all cities) on Oct 24, 2016";
      sql =
        "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = \
         c.id WHERE t.requested_at = '2016-10-24' GROUP BY c.name";
      is_histogram = true;
      wpinq =
        (fun db rng ~epsilon ->
          let trips = Database.find db "trips" and cities = Database.find db "cities" in
          let t_city = col trips "city_id" and t_at = col trips "requested_at" in
          let c_id = col cities "id" and c_name = col cities "name" in
          let lhs =
            Wpinq.of_table trips
            |> Wpinq.filter (fun r -> Value.equal r.(t_at) (Value.String "2016-10-24"))
          in
          (* cities is public: select-style lookup, no weight rescaling *)
          let joined =
            Wpinq.join_public
              ~key_left:(fun r -> r.(t_city))
              ~key_right:(fun r -> r.(c_id))
              ~combine:(fun _ c -> [| c.(c_name) |])
              lhs
              (Array.to_list (Table.rows cities))
          in
          histogram rng ~epsilon ~key:(fun r -> r.(0)) joined);
    };
    {
      name = "P5";
      description =
        "Histogram: total trips per driver in Hong Kong between Sept 9 and Oct 3, 2016";
      sql =
        Fmt.str
          "SELECT t.driver_id, COUNT(*) FROM trips t JOIN drivers d ON \
           t.driver_id = d.id WHERE d.city_id = %d AND t.requested_at BETWEEN \
           '2016-09-09' AND '2016-10-03' GROUP BY t.driver_id"
          hong_kong;
      is_histogram = true;
      wpinq =
        (fun db rng ~epsilon ->
          let trips = Database.find db "trips" and drivers = Database.find db "drivers" in
          let t_driver = col trips "driver_id" and t_at = col trips "requested_at" in
          let d_id = col drivers "id" and d_city = col drivers "city_id" in
          let lhs =
            Wpinq.of_table trips
            |> Wpinq.filter (fun r ->
                 Value.compare r.(t_at) (Value.String "2016-09-09") >= 0
                 && Value.compare r.(t_at) (Value.String "2016-10-03") <= 0)
          in
          let rhs =
            Wpinq.of_table drivers
            |> Wpinq.filter (fun r -> Value.equal r.(d_city) (Value.Int hong_kong))
          in
          let joined =
            Wpinq.join
              ~key_left:(fun r -> r.(t_driver))
              ~key_right:(fun r -> r.(d_id))
              ~combine:(fun t _ -> [| t.(t_driver) |])
              lhs rhs
          in
          histogram rng ~epsilon ~key:(fun r -> r.(0)) joined);
    };
    {
      name = "P6";
      description =
        "Histogram: drivers by thresholds of total completed trips, for \
         drivers registered in Sydney with a trip in the past 28 days";
      sql =
        Fmt.str
          "SELECT CASE WHEN a.completed_trips >= 20 THEN 'high' WHEN \
           a.completed_trips >= 5 THEN 'mid' ELSE 'low' END AS bucket, \
           COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id \
           WHERE d.signup_city_id = %d AND a.last_trip_at >= '2016-06-01' \
           GROUP BY CASE WHEN a.completed_trips >= 20 THEN 'high' WHEN \
           a.completed_trips >= 5 THEN 'mid' ELSE 'low' END"
          sydney;
      is_histogram = true;
      wpinq =
        (fun db rng ~epsilon ->
          let drivers = Database.find db "drivers"
          and analytics = Database.find db "analytics" in
          let d_id = col drivers "id" and d_signup = col drivers "signup_city_id" in
          let a_driver = col analytics "driver_id"
          and a_trips = col analytics "completed_trips"
          and a_last = col analytics "last_trip_at" in
          let lhs =
            Wpinq.of_table drivers
            |> Wpinq.filter (fun r -> Value.equal r.(d_signup) (Value.Int sydney))
          in
          let rhs =
            Wpinq.of_table analytics
            |> Wpinq.filter (fun r ->
                 Value.compare r.(a_last) (Value.String "2016-06-01") >= 0)
          in
          let bucket r =
            match Value.to_int r.(a_trips) with
            | Some n when n >= 20 -> Value.String "high"
            | Some n when n >= 5 -> Value.String "mid"
            | _ -> Value.String "low"
          in
          let joined =
            Wpinq.join
              ~key_left:(fun r -> r.(d_id))
              ~key_right:(fun r -> r.(a_driver))
              ~combine:(fun _ a -> [| bucket a |])
              lhs rhs
          in
          histogram rng ~epsilon ~key:(fun r -> r.(0)) joined);
    };
  ]
