module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng

(** A directed graph stored as an edges(source, dest) table — the substrate
    of the §3.4 counting-triangles example, pinned to the ca-HepTh
    max-frequency metric (65) by construction. *)

val generate :
  ?nodes:int -> ?max_degree:int -> ?extra_edges:int -> Rng.t -> Database.t * Metrics.t
(** Defaults: 400 nodes, max degree 65 (= both mf metrics), 1200 random
    extra edges capped below the hub degree. *)

val triangle_sql : string
(** The triangle-counting query of §3.4, verbatim. *)
