module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Rng = Flex_dp.Rng

(* A directed graph stored as an edges(source, dest) table — the substrate of
   the §3.4 counting-triangles example. The paper uses the ca-HepTh
   collaboration network, whose max-frequency metric is 65; we synthesise a
   graph pinned to the same metric: one hub with exactly [max_degree]
   out-edges, one with [max_degree] in-edges, and a sparse random remainder
   capped below the hub degree. *)

let generate ?(nodes = 400) ?(max_degree = 65) ?(extra_edges = 1200) rng :
    Database.t * Metrics.t =
  let edges = Hashtbl.create 4096 in
  let add s d = if s <> d then Hashtbl.replace edges (s, d) () in
  (* hub out-degree: node 1 -> 3..max_degree+2 (skipping node 2, which is
     the in-degree hub and must stay at exactly max_degree) *)
  for d = 3 to max_degree + 2 do
    add 1 d
  done;
  (* hub in-degree: 3..max_degree+2 -> node 2 *)
  for s = 3 to max_degree + 2 do
    add s 2
  done;
  let cap = max 1 (max_degree / 2) in
  let out_deg = Hashtbl.create 256 and in_deg = Hashtbl.create 256 in
  let deg tbl v = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
  Hashtbl.iter
    (fun (s, d) () ->
      Hashtbl.replace out_deg s (deg out_deg s + 1);
      Hashtbl.replace in_deg d (deg in_deg d + 1))
    edges;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra_edges && !attempts < extra_edges * 20 do
    incr attempts;
    let s = 1 + Rng.int rng nodes and d = 1 + Rng.int rng nodes in
    if s <> d && (not (Hashtbl.mem edges (s, d))) && deg out_deg s < cap && deg in_deg d < cap
    then begin
      add s d;
      Hashtbl.replace out_deg s (deg out_deg s + 1);
      Hashtbl.replace in_deg d (deg in_deg d + 1);
      incr added
    end
  done;
  let rows =
    Hashtbl.fold (fun (s, d) () acc -> [| Value.Int s; Value.Int d |] :: acc) edges []
  in
  let table = Table.create ~name:"edges" ~columns:[ "source"; "dest" ] rows in
  let db = Database.of_tables [ table ] in
  (db, Metrics.compute db)

(* The triangle-counting query of §3.4, verbatim. *)
let triangle_sql =
  "SELECT COUNT(*) FROM edges e1 \
   JOIN edges e2 ON e1.dest = e2.source AND e1.source < e2.source \
   JOIN edges e3 ON e2.dest = e3.source AND e3.dest = e1.source AND \
   e2.source < e3.source"
