module Rng = Flex_dp.Rng

(** Generator for the counting-query workload behind Figures 3, 4, 6, 7 and
    Table 4: templated counting/histogram queries over the Uber-like schema
    with filters of widely varying selectivity. Each query carries the
    Table 4 category it instantiates and a companion population query. *)

type category =
  | Normal
  | Individual_filter  (** filters on one person's data *)
  | Low_population  (** heavily restrictive filters *)
  | Many_to_many  (** m:n join with large mf *)

val category_name : category -> string

type relationship = One_to_one | One_to_many | Many_to_many

val relationship_name : relationship -> string

type t = {
  id : int;
  sql : string;
  has_join : bool;
  is_histogram : bool;
  category : category;
  relationship : relationship option;  (** of the query's join, when any *)
  population_sql : string;  (** count of distinct primary-entity rows used *)
}

val generate :
  Rng.t -> count:int -> n_cities:int -> n_drivers:int -> n_users:int -> t list
(** [n_*] describe the generated database so filters stay in-domain. *)
