module Value = Flex_engine.Value
module Rng = Flex_dp.Rng

(* Shared helpers for synthetic data generation. *)

let day_of_2016 d =
  (* day index 0..365 -> ISO date string in 2016 (a leap year) *)
  let months = [| 31; 29; 31; 30; 31; 30; 31; 31; 30; 31; 30; 31 |] in
  let rec go m d = if d < months.(m) then (m + 1, d + 1) else go (m + 1) (d - months.(m)) in
  let m, dd = go 0 (max 0 (min 365 d)) in
  Fmt.str "2016-%02d-%02d" m dd

let random_date_2016 rng = day_of_2016 (Rng.int rng 366)

let random_date_range rng ~from_day ~to_day =
  day_of_2016 (from_day + Rng.int rng (max 1 (to_day - from_day)))

let vint i = Value.Int i
let vstr s = Value.String s
let vfloat f = Value.Float f

let pick rng choices = Rng.choose rng (Array.of_list choices)

let pick_weighted rng choices =
  let weights = Array.of_list (List.map snd choices) in
  fst (List.nth choices (Rng.weighted_index rng weights))
