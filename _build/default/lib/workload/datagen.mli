module Value = Flex_engine.Value
module Rng = Flex_dp.Rng

(** Shared helpers for synthetic data generation. *)

val day_of_2016 : int -> string
(** Day index 0..365 to an ISO date in 2016 (a leap year). *)

val random_date_2016 : Rng.t -> string
val random_date_range : Rng.t -> from_day:int -> to_day:int -> string
val vint : int -> Value.t
val vstr : string -> Value.t
val vfloat : float -> Value.t
val pick : Rng.t -> 'a list -> 'a

val pick_weighted : Rng.t -> ('a * float) list -> 'a
(** Sample proportionally to the weights. *)
