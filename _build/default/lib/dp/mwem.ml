(* MWEM (Hardt, Ligett, McSherry) — one of the budget-efficient strategies
   of paper §4.3: answer a whole workload of linear counting queries through
   a differentially private synthetic distribution, spending budget only on
   the [rounds] worst-answered queries instead of on every query.

   The data is a histogram over a finite domain (e.g. the public bin labels
   FLEX enumerates); a workload query is a weight vector over that domain
   (subset-sums cover predicates and range queries). Each round splits its
   epsilon share between selecting the worst query (exponential mechanism)
   and measuring it (Laplace), then performs the multiplicative-weights
   update. *)

type query = { label : string; vector : float array }

let subset_query ~label ~domain_size indices =
  let v = Array.make domain_size 0.0 in
  List.iter
    (fun i ->
      if i < 0 || i >= domain_size then invalid_arg "Mwem.subset_query: index out of range";
      v.(i) <- 1.0)
    indices;
  { label; vector = v }

let range_query ~label ~domain_size ~lo ~hi =
  subset_query ~label ~domain_size (List.init (max 0 (hi - lo + 1)) (fun i -> lo + i))

let answer (hist : float array) (q : query) =
  if Array.length q.vector <> Array.length hist then
    invalid_arg "Mwem.answer: domain size mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i w -> acc := !acc +. (w *. hist.(i))) q.vector;
  !acc

type result = {
  synthetic : float array; (* synthetic histogram, same total mass as the data *)
  measured : (query * float) list; (* the queries actually paid for *)
}

(* Exponential mechanism over queries, scored by absolute error between the
   true data and the current synthetic histogram. Selection sensitivity is 1
   for counting queries. *)
let select_worst rng ~epsilon ~data ~synthetic (workload : query list) =
  Exp_mech.select rng ~epsilon ~sensitivity:1.0
    ~score:(fun q -> Float.abs (answer data q -. answer synthetic q))
    (Array.of_list workload)

let multiplicative_update ~synthetic ~query ~target =
  let estimate = answer synthetic query in
  let n = Array.fold_left ( +. ) 0.0 synthetic in
  if n <= 0.0 then ()
  else begin
    let factor i = exp (query.vector.(i) *. (target -. estimate) /. (2.0 *. n)) in
    Array.iteri (fun i x -> synthetic.(i) <- x *. factor i) synthetic;
    (* renormalise to the original mass *)
    let total = Array.fold_left ( +. ) 0.0 synthetic in
    if total > 0.0 then
      Array.iteri (fun i x -> synthetic.(i) <- x *. n /. total) synthetic
  end

let run rng ~epsilon ~rounds ~(data : float array) (workload : query list) : result =
  if epsilon <= 0.0 then invalid_arg "Mwem.run: epsilon must be positive";
  if rounds < 1 then invalid_arg "Mwem.run: rounds must be >= 1";
  if workload = [] then invalid_arg "Mwem.run: empty workload";
  let n = Array.fold_left ( +. ) 0.0 data in
  let domain = Array.length data in
  (* uniform prior with the data's total mass *)
  let synthetic = Array.make domain (n /. float_of_int (max 1 domain)) in
  let eps_round = epsilon /. float_of_int rounds in
  let measured = ref [] in
  for _ = 1 to rounds do
    let q = select_worst rng ~epsilon:(eps_round /. 2.0) ~data ~synthetic workload in
    let target = answer data q +. Laplace.sample rng ~scale:(2.0 /. eps_round) in
    measured := (q, target) :: !measured;
    multiplicative_update ~synthetic ~query:q ~target
  done;
  { synthetic; measured = List.rev !measured }

(* Average absolute workload error of a synthetic histogram. *)
let workload_error ~data ~synthetic workload =
  let total =
    List.fold_left
      (fun acc q -> acc +. Float.abs (answer data q -. answer synthetic q))
      0.0 workload
  in
  total /. float_of_int (max 1 (List.length workload))
