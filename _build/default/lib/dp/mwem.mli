(** MWEM (Hardt–Ligett–McSherry), a budget-efficient strategy from paper
    §4.3: answer a workload of linear counting queries over a finite domain
    through a synthetic histogram, paying budget only for [rounds]
    adaptively chosen measurements. *)

type query = { label : string; vector : float array }
(** A linear counting query: weights over the domain bins. *)

val subset_query : label:string -> domain_size:int -> int list -> query
val range_query : label:string -> domain_size:int -> lo:int -> hi:int -> query

val answer : float array -> query -> float
(** Evaluate a query against a histogram. *)

type result = {
  synthetic : float array;  (** same total mass as the data *)
  measured : (query * float) list;  (** the queries actually paid for *)
}

val run : Rng.t -> epsilon:float -> rounds:int -> data:float array -> query list -> result
(** Each of the [rounds] iterations spends [epsilon/rounds], split between
    an exponential-mechanism selection of the worst-answered query and a
    Laplace measurement of it, followed by the multiplicative-weights
    update. The overall run is [epsilon]-DP. *)

val workload_error : data:float array -> synthetic:float array -> query list -> float
(** Mean absolute error of the workload on a synthetic histogram. *)
