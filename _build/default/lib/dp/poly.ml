(* Polynomials in the distance k with non-negative float coefficients.
   Lemma 3 of the paper guarantees elastic stability has this shape; the
   non-negativity invariant is what licenses the Theorem 3 cutoff used by
   {!Smooth}. Representation: coefficient array indexed by power, normalised
   so the leading coefficient is non-zero (except for the zero polynomial,
   represented by [||]). *)

type t = float array

let normalise a =
  let n = Array.length a in
  let rec last i = if i < 0 then -1 else if a.(i) <> 0.0 then i else last (i - 1) in
  let d = last (n - 1) in
  if d = n - 1 then a else Array.sub a 0 (d + 1)

let of_coeffs a =
  Array.iter
    (fun c ->
      if c < 0.0 || Float.is_nan c then
        invalid_arg "Poly.of_coeffs: coefficients must be non-negative")
    a;
  normalise (Array.copy a)

let zero : t = [||]

let const c = of_coeffs [| c |]

let one = const 1.0

(* c0 + c1*k *)
let linear c0 c1 = of_coeffs [| c0; c1 |]

let is_zero p = Array.length p = 0

let degree p = Array.length p - 1

let coeff p i = if i < Array.length p then p.(i) else 0.0

let coeffs p = Array.copy p

let equal (p : t) (q : t) = p = q

let add p q =
  let n = max (Array.length p) (Array.length q) in
  normalise (Array.init n (fun i -> coeff p i +. coeff q i))

let mul p q =
  if is_zero p || is_zero q then zero
  else begin
    let n = Array.length p + Array.length q - 1 in
    let r = Array.make n 0.0 in
    Array.iteri
      (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) +. (pi *. qj)) q)
      p;
    normalise r
  end

let scale c p =
  if c < 0.0 then invalid_arg "Poly.scale: negative factor";
  if c = 0.0 then zero else normalise (Array.map (fun x -> c *. x) p)

(* Horner evaluation. *)
let eval p k =
  let x = float_of_int k in
  let n = Array.length p in
  let rec go i acc = if i < 0 then acc else go (i - 1) ((acc *. x) +. p.(i)) in
  if n = 0 then 0.0 else go (n - 2) p.(n - 1)

let eval_f p x =
  let n = Array.length p in
  let rec go i acc = if i < 0 then acc else go (i - 1) ((acc *. x) +. p.(i)) in
  if n = 0 then 0.0 else go (n - 2) p.(n - 1)

(* Coefficient-wise domination: p(k) >= q(k) for every k >= 0 because all
   coefficients are non-negative. Used to prune polysets. *)
let dominates p q =
  let n = max (Array.length p) (Array.length q) in
  let rec go i = i >= n || (coeff p i >= coeff q i && go (i + 1)) in
  go 0

let pp ppf p =
  if is_zero p then Fmt.string ppf "0"
  else begin
    let first = ref true in
    Array.iteri
      (fun i c ->
        if c <> 0.0 then begin
          if not !first then Fmt.string ppf " + ";
          first := false;
          match i with
          | 0 -> Fmt.pf ppf "%g" c
          | 1 -> if c = 1.0 then Fmt.string ppf "k" else Fmt.pf ppf "%gk" c
          | _ -> if c = 1.0 then Fmt.pf ppf "k^%d" i else Fmt.pf ppf "%gk^%d" c i
        end)
      p
  end

let to_string p = Fmt.str "%a" pp p
