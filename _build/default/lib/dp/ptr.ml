(* Propose-test-release (Dwork and Lei), instantiated with an elastic
   sensitivity function. The paper (§6) observes that elastic sensitivity is
   exactly the missing ingredient PTR needs: a computable upper bound on
   local sensitivity at any distance from the true database.

   Given a proposed sensitivity [s]:
   - because ES(k) upper-bounds the local sensitivity of every database
     within distance k (Theorem 1), the distance gamma from the true
     database to one whose local sensitivity exceeds [s] is at least
     [k*(s) = 1 + max { k | ES(k) <= s }];
   - PTR releases the answer with Lap(s/epsilon) noise only if a noisy
     version of that distance clears ln(1/delta)/epsilon, and refuses
     otherwise. The refusal decision itself is differentially private. *)

type outcome =
  | Released of float
  | Refused (* the database is too close to one with sensitivity > s *)

type t = {
  proposed_sensitivity : float;
  distance_lower_bound : int;
  threshold : float;
  noisy_distance : float;
}

(* Largest k with ES(k) <= s, by linear scan (ES is non-decreasing). The
   scan is capped: past the cap the distance bound is at least the cap,
   which only makes the test more likely to pass safely. *)
let distance_bound ?(max_scan = 100_000) ~sensitivity es =
  if es 0 > sensitivity then 0
  else begin
    let rec go k =
      if k >= max_scan then max_scan
      else if es (k + 1) > sensitivity then k + 1
      else go (k + 1)
    in
    go 0
  end

let propose rng ~epsilon ~delta ~sensitivity es =
  if epsilon <= 0.0 then invalid_arg "Ptr.propose: epsilon must be positive";
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Ptr.propose: delta in (0,1)";
  if sensitivity < 0.0 then invalid_arg "Ptr.propose: negative sensitivity";
  let distance_lower_bound = distance_bound ~sensitivity es in
  let noisy_distance =
    float_of_int distance_lower_bound +. Laplace.sample rng ~scale:(1.0 /. epsilon)
  in
  let threshold = log (1.0 /. delta) /. epsilon in
  { proposed_sensitivity = sensitivity; distance_lower_bound; threshold; noisy_distance }

let test t = t.noisy_distance > t.threshold

(* Full mechanism: epsilon is split evenly between the distance test and the
   release. *)
let release rng ~epsilon ~delta ~sensitivity es value =
  let eps_half = epsilon /. 2.0 in
  let t = propose rng ~epsilon:eps_half ~delta ~sensitivity es in
  if test t then Released (value +. Laplace.sample rng ~scale:(sensitivity /. eps_half))
  else Refused
