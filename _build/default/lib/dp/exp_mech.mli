(** The exponential mechanism (McSherry–Talwar): select a candidate with
    probability proportional to [exp(epsilon * score / (2 * sensitivity))].
    epsilon-DP when [score] has the given sensitivity in the database. *)

val select :
  Rng.t -> epsilon:float -> sensitivity:float -> score:('a -> float) -> 'a array -> 'a

val distribution :
  epsilon:float -> sensitivity:float -> score:('a -> float) -> 'a array -> float array
(** Selection probabilities (for tests and diagnostics). *)
