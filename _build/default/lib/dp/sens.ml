(* A sensitivity "polyset": a finite, non-empty set of non-negative-coefficient
   polynomials whose value at distance k is the pointwise maximum. Sums and
   products distribute over max for non-negative operands, so the elastic
   stability recursion (Fig 1b) stays closed under this representation; the
   non-self-join case is a plain set union. *)

type t = Poly.t list

let prune ps =
  (* Drop duplicates and polynomials dominated by another member. *)
  let rec dedup acc = function
    | [] -> List.rev acc
    | p :: rest ->
      if List.exists (Poly.equal p) acc then dedup acc rest else dedup (p :: acc) rest
  in
  let ps = dedup [] ps in
  let survives p =
    not (List.exists (fun q -> (not (Poly.equal p q)) && Poly.dominates q p) ps)
  in
  match List.filter survives ps with [] -> [ Poly.zero ] | kept -> kept

let of_poly p : t = [ p ]

let zero = of_poly Poly.zero
let one = of_poly Poly.one
let const c = of_poly (Poly.const c)
let linear c0 c1 = of_poly (Poly.linear c0 c1)

let polys (t : t) = t

let cross f a b = List.concat_map (fun p -> List.map (fun q -> f p q) b) a

let cap = 64

(* Keep polyset sizes bounded on adversarial queries (e.g. dozens of nested
   non-self joins): past [cap] members we keep the lexicographically largest
   coefficient vectors, which over-approximates the max and stays sound. *)
let bound ps =
  let ps = prune ps in
  if List.length ps <= cap then ps
  else begin
    let key p =
      let d = Poly.degree p in
      (d, Poly.coeff p (max d 0))
    in
    let sorted = List.sort (fun p q -> compare (key q) (key p)) ps in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    (* Sound over-approximation: fold the dropped tail into the kept head by
       coefficient-wise max with the largest member. *)
    let kept = take cap sorted in
    let dropped = List.filteri (fun i _ -> i >= cap) sorted in
    match (kept, dropped) with
    | [], _ -> [ Poly.zero ]
    | top :: rest, dropped ->
      let fold_max p q =
        let n = max (Poly.degree p) (Poly.degree q) + 1 in
        Poly.of_coeffs
          (Array.init (max n 1) (fun i -> Float.max (Poly.coeff p i) (Poly.coeff q i)))
      in
      List.fold_left fold_max top dropped :: rest
  end

let add a b = bound (cross Poly.add a b)
let mul a b = bound (cross Poly.mul a b)
let max_ a b = bound (a @ b)
let scale c t = bound (List.map (Poly.scale c) t)

let eval (t : t) k = List.fold_left (fun acc p -> Float.max acc (Poly.eval p k)) 0.0 t

let degree (t : t) = List.fold_left (fun acc p -> max acc (Poly.degree p)) (-1) t

let is_zero (t : t) = List.for_all Poly.is_zero t

let is_const (t : t) = degree t <= 0

let pp ppf (t : t) =
  match t with
  | [ p ] -> Poly.pp ppf p
  | ps -> Fmt.pf ppf "max(%a)" Fmt.(list ~sep:(any ", ") Poly.pp) ps

let to_string t = Fmt.str "%a" pp t
