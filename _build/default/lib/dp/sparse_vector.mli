(** Numeric sparse vector technique: answer only queries whose noisy value
    clears a noisy threshold, halting after [max_answers] answers. *)

type t

type outcome =
  | Below  (** noisy value under the noisy threshold; nothing released *)
  | Above of float  (** released noisy value *)
  | Halted  (** the answer quota is exhausted *)

val create : ?max_answers:int -> Rng.t -> epsilon:float -> threshold:float -> t

val query : t -> sensitivity:float -> float -> outcome
(** Probe one query given its true value and a sensitivity upper bound
    (e.g. a FLEX smooth bound). *)

val answered : t -> int
val halted : t -> bool
val epsilon_spent : t -> float
