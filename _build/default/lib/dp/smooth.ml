(* Smooth sensitivity (Nissim et al.) specialised to elastic sensitivity, as
   used by the FLEX mechanism (paper Definition 7 and Theorem 3). *)

type result = { smooth_bound : float; argmax_k : int; beta : float; scanned : int }

let beta ~epsilon ~delta =
  if epsilon <= 0.0 then invalid_arg "Smooth.beta: epsilon must be positive";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Smooth.beta: delta must be in (0, 1)";
  epsilon /. (2.0 *. log (2.0 /. delta))

(* Default hard ceiling on the scan length; Theorem 3 gives the real cutoff
   degree/beta, this only guards against degenerate parameters. *)
let default_max_scan = 20_000_000

(* max_{k=0..n} e^{-beta*k} * f(k), where f is the elastic sensitivity at
   distance k. Theorem 3: for f a polynomial of degree d with non-negative
   coefficients, the max is reached by k <= d / beta, so we scan only that
   far (clamped by the database size n when given). *)
let smooth_max ?(max_scan = default_max_scan) ~beta ?n ~degree f =
  if beta <= 0.0 then invalid_arg "Smooth.smooth_max: beta must be positive";
  let cutoff =
    if degree <= 0 then 0
    else
      let c = ceil (float_of_int degree /. beta) in
      if Float.is_nan c || c >= float_of_int max_scan then max_scan
      else int_of_float c
  in
  let cutoff = match n with Some n -> min cutoff (max n 0) | None -> cutoff in
  let best = ref (f 0) in
  let best_k = ref 0 in
  for k = 1 to cutoff do
    let v = exp (-.beta *. float_of_int k) *. f k in
    if v > !best then begin
      best := v;
      best_k := k
    end
  done;
  { smooth_bound = !best; argmax_k = !best_k; beta; scanned = cutoff + 1 }

let of_sens ?max_scan ~beta ?n sens =
  smooth_max ?max_scan ~beta ?n ~degree:(Sens.degree sens) (Sens.eval sens)

(* Laplace noise scale for the FLEX mechanism: 2S/epsilon (Definition 7). *)
let noise_scale ~epsilon result =
  if epsilon <= 0.0 then invalid_arg "Smooth.noise_scale";
  2.0 *. result.smooth_bound /. epsilon
