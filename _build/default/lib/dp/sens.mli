(** Sensitivity functions of the neighbour distance [k], represented as the
    pointwise maximum of a set of non-negative-coefficient polynomials.

    Elastic stability (paper Fig 1b) combines sub-results with [+], [*] and
    [max]; all three are closed over this representation, and the polynomial
    degree bound drives the Theorem 3 smooth-sensitivity cutoff. *)

type t

val zero : t
val one : t
val const : float -> t

val linear : float -> float -> t
(** [linear c0 c1] is the single polynomial [c0 + c1*k]. *)

val of_poly : Poly.t -> t
val polys : t -> Poly.t list
val add : t -> t -> t
val mul : t -> t -> t

val max_ : t -> t -> t
(** Pointwise maximum (set union with domination pruning). *)

val scale : float -> t -> t

val eval : t -> int -> float
(** Value at integer distance [k >= 0]. *)

val degree : t -> int
(** Maximum member degree; [-1] if identically zero. *)

val is_zero : t -> bool
val is_const : t -> bool
val pp : t Fmt.t
val to_string : t -> string
