(* Laplace(0, b) sampled by inverse CDF: if U ~ Uniform(-1/2, 1/2] then
   -b * sgn(U) * ln(1 - 2|U|) is Laplace with scale b. *)
let sample rng ~scale =
  if scale < 0.0 then invalid_arg "Laplace.sample: negative scale";
  if scale = 0.0 then 0.0
  else
    let u = Rng.float rng 1.0 -. 0.5 in
    let sign = if u >= 0.0 then 1.0 else -1.0 in
    let mag = 1.0 -. (2.0 *. Float.abs u) in
    let mag = if mag <= 0.0 then Float.min_float else mag in
    -.scale *. sign *. log mag

let add_noise rng ~scale x = x +. sample rng ~scale

let pdf ~scale x =
  if scale <= 0.0 then invalid_arg "Laplace.pdf: non-positive scale";
  exp (-.Float.abs x /. scale) /. (2.0 *. scale)

let cdf ~scale x =
  if scale <= 0.0 then invalid_arg "Laplace.cdf: non-positive scale";
  if x < 0.0 then 0.5 *. exp (x /. scale) else 1.0 -. (0.5 *. exp (-.x /. scale))

let variance ~scale = 2.0 *. scale *. scale

(* Two-sided (1 - alpha) confidence half-width: P(|X| <= w) = 1 - alpha. *)
let confidence_width ~scale ~alpha =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Laplace.confidence_width";
  -.scale *. log alpha
