(** The Laplace distribution, the noise source of the FLEX mechanism. *)

val sample : Rng.t -> scale:float -> float
(** Draw from Laplace(0, scale). [scale = 0] returns 0 (no noise). *)

val add_noise : Rng.t -> scale:float -> float -> float
(** [add_noise rng ~scale x] is [x + Lap(scale)]. *)

val pdf : scale:float -> float -> float

val cdf : scale:float -> float -> float

val variance : scale:float -> float
(** [2 * scale^2]. *)

val confidence_width : scale:float -> alpha:float -> float
(** Half-width [w] with [P(|X| <= w) = 1 - alpha]. *)
