(** Smooth sensitivity smoothing of an elastic-sensitivity function
    (paper §4.1–4.2: Definition 7 and the Theorem 3 scan cutoff). *)

type result = {
  smooth_bound : float;  (** S = max_k e^(-beta k) * ES(k) *)
  argmax_k : int;  (** distance at which the max is attained *)
  beta : float;
  scanned : int;  (** number of k values evaluated *)
}

val beta : epsilon:float -> delta:float -> float
(** beta = epsilon / (2 ln(2/delta)). *)

val smooth_max :
  ?max_scan:int -> beta:float -> ?n:int -> degree:int -> (int -> float) -> result
(** [smooth_max ~beta ~degree f] maximises [e^(-beta k) * f k] over
    [k = 0 .. min(ceil(degree/beta), n)]. [degree] must bound the polynomial
    degree of [f] (Theorem 3); a [degree <= 0] function is evaluated only at
    [k = 0]. *)

val of_sens : ?max_scan:int -> beta:float -> ?n:int -> Sens.t -> result

val noise_scale : epsilon:float -> result -> float
(** Laplace scale [2S/epsilon] from Definition 7. *)
