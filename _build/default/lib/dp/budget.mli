(** Privacy-budget accounting (paper §4.3): basic sequential composition with
    a hard limit, plus the strong-composition cost report. *)

type charge = { epsilon : float; delta : float; label : string }

type t

exception
  Exhausted of {
    requested : charge;
    remaining_epsilon : float;
    remaining_delta : float;
  }

val create : epsilon:float -> delta:float -> t
(** A fresh accountant with the given total budget. *)

val charge : ?label:string -> t -> epsilon:float -> delta:float -> unit
(** Record a mechanism invocation; raises {!Exhausted} if the basic-composition
    total would exceed the limit. *)

val can_afford : t -> epsilon:float -> delta:float -> bool
val charges : t -> charge list

val spent_basic : t -> float * float
(** Total [(epsilon, delta)] under basic composition. *)

val spent_strong : ?delta_slack:float -> t -> float * float
(** Total under the strong composition theorem (Dwork–Rothblum–Vadhan),
    with [delta_slack] added to the delta term (default [1e-9]). *)

val remaining : t -> float * float
val pp : t Fmt.t
