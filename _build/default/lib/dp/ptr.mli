(** Propose-test-release (Dwork–Lei) instantiated with an elastic
    sensitivity function: ES(k) bounds local sensitivity at distance k
    (paper Theorem 1), so [1 + max {k | ES(k) <= s}] lower-bounds the
    distance to any database whose local sensitivity exceeds the proposed
    [s]. PTR noisily tests that distance and releases with Lap(s/epsilon)
    only when the test passes. *)

type outcome = Released of float | Refused

type t = {
  proposed_sensitivity : float;
  distance_lower_bound : int;
  threshold : float;  (** ln(1/delta) / epsilon *)
  noisy_distance : float;
}

val distance_bound : ?max_scan:int -> sensitivity:float -> (int -> float) -> int
(** [1 + max {k | ES(k) <= s}]; 0 when already ES(0) > s. *)

val propose : Rng.t -> epsilon:float -> delta:float -> sensitivity:float -> (int -> float) -> t
val test : t -> bool

val release :
  Rng.t -> epsilon:float -> delta:float -> sensitivity:float -> (int -> float) -> float -> outcome
(** End-to-end (epsilon, delta)-DP release; epsilon is split evenly between
    the distance test and the Laplace release. *)
