(* The exponential mechanism (McSherry and Talwar), for releasing categorical
   choices: select a candidate with probability proportional to
   exp(epsilon * score / (2 * sensitivity)). Paper §6 discusses it as the
   standard tool FLEX could adopt for categorical outputs; MWEM uses it to
   pick the worst-answered workload query. *)

let select rng ~epsilon ~sensitivity ~score (candidates : 'a array) : 'a =
  if epsilon <= 0.0 then invalid_arg "Exp_mech.select: epsilon must be positive";
  if sensitivity <= 0.0 then invalid_arg "Exp_mech.select: sensitivity must be positive";
  if Array.length candidates = 0 then invalid_arg "Exp_mech.select: no candidates";
  let scores = Array.map score candidates in
  (* subtract the max for numerical stability; the distribution is
     invariant under shifting scores *)
  let smax = Array.fold_left Float.max neg_infinity scores in
  let weights =
    Array.map (fun s -> exp (epsilon *. (s -. smax) /. (2.0 *. sensitivity))) scores
  in
  candidates.(Rng.weighted_index rng weights)

(* Probability each candidate would be selected (exposed for tests). *)
let distribution ~epsilon ~sensitivity ~score (candidates : 'a array) : float array =
  if Array.length candidates = 0 then [||]
  else begin
    let scores = Array.map score candidates in
    let smax = Array.fold_left Float.max neg_infinity scores in
    let weights =
      Array.map (fun s -> exp (epsilon *. (s -. smax) /. (2.0 *. sensitivity))) scores
    in
    let total = Array.fold_left ( +. ) 0.0 weights in
    Array.map (fun w -> w /. total) weights
  end
