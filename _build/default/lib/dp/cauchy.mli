(** The standard Cauchy distribution: the noise source of the *pure*
    epsilon-DP smooth-sensitivity mechanism (Nissim et al.). With a
    beta-smooth bound S and [beta <= epsilon/6], releasing
    [f(x) + (6S/epsilon) * Cauchy] is epsilon-DP with delta = 0. Heavier
    tails than Laplace: no mean or variance. *)

val sample : Rng.t -> scale:float -> float
val add_noise : Rng.t -> scale:float -> float -> float
val pdf : scale:float -> float -> float
val cdf : scale:float -> float -> float
val confidence_width : scale:float -> alpha:float -> float

val beta : epsilon:float -> float
(** [epsilon / 6]. *)

val noise_scale : epsilon:float -> float -> float
(** [6S / epsilon]. *)
