(** Polynomials in the neighbour distance [k] with non-negative
    coefficients — the closed form of elastic stability (paper, Lemma 3). *)

type t

val zero : t
val one : t
val const : float -> t

val linear : float -> float -> t
(** [linear c0 c1] is [c0 + c1*k]. *)

val of_coeffs : float array -> t
(** Raises [Invalid_argument] on negative or NaN coefficients. *)

val is_zero : t -> bool

val degree : t -> int
(** Degree; [-1] for the zero polynomial. *)

val coeff : t -> int -> float
val coeffs : t -> float array
val equal : t -> t -> bool
val add : t -> t -> t
val mul : t -> t -> t

val scale : float -> t -> t
(** Multiply by a non-negative constant. *)

val eval : t -> int -> float
(** Value at integer distance [k]. *)

val eval_f : t -> float -> float

val dominates : t -> t -> bool
(** [dominates p q] implies [p(k) >= q(k)] for all [k >= 0]. *)

val pp : t Fmt.t
val to_string : t -> string
