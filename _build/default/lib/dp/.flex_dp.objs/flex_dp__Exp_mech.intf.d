lib/dp/exp_mech.mli: Rng
