lib/dp/mwem.mli: Rng
