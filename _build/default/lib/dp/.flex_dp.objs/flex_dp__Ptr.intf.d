lib/dp/ptr.mli: Rng
