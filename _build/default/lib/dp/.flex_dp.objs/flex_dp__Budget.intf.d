lib/dp/budget.mli: Fmt
