lib/dp/poly.ml: Array Float Fmt
