lib/dp/laplace.mli: Rng
