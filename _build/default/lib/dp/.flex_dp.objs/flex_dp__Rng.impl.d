lib/dp/rng.ml: Array Float Random
