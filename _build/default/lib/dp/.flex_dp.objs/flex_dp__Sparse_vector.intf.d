lib/dp/sparse_vector.mli: Rng
