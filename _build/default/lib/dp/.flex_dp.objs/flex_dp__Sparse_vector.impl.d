lib/dp/sparse_vector.ml: Laplace Rng
