lib/dp/ptr.ml: Laplace
