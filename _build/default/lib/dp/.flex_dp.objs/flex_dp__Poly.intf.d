lib/dp/poly.mli: Fmt
