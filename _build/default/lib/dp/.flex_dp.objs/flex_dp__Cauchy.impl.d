lib/dp/cauchy.ml: Float Rng
