lib/dp/exp_mech.ml: Array Float Rng
