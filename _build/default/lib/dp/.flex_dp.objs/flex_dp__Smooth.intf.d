lib/dp/smooth.mli: Sens
