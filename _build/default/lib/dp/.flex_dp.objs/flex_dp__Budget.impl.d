lib/dp/budget.ml: Float Fmt List
