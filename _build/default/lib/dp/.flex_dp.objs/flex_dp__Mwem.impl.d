lib/dp/mwem.ml: Array Exp_mech Float Laplace List
