lib/dp/smooth.ml: Float Sens
