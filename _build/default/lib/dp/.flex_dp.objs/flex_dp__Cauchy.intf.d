lib/dp/cauchy.mli: Rng
