lib/dp/sens.ml: Array Float Fmt List Poly
