lib/dp/rng.mli:
