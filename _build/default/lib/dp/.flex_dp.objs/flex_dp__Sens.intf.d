lib/dp/sens.mli: Fmt Poly
