(* The sparse vector technique (paper §4.3, citing Dwork et al.): answer only
   queries whose noisy value clears a noisy threshold, paying budget only for
   the (at most [max_answers]) queries answered. Sensitivities are supplied
   per query so the FLEX elastic-sensitivity bound can be plugged in. *)

type t = {
  rng : Rng.t;
  epsilon : float;
  threshold : float;
  max_answers : int;
  mutable noisy_threshold : float;
  mutable answered : int;
  mutable halted : bool;
}

type outcome = Below | Above of float | Halted

let create ?(max_answers = 1) rng ~epsilon ~threshold =
  if epsilon <= 0.0 then invalid_arg "Sparse_vector.create: epsilon must be positive";
  if max_answers < 1 then invalid_arg "Sparse_vector.create: max_answers must be >= 1";
  let t =
    {
      rng;
      epsilon;
      threshold;
      max_answers;
      noisy_threshold = 0.0;
      answered = 0;
      halted = false;
    }
  in
  t.noisy_threshold <- threshold +. Laplace.sample rng ~scale:(2.0 /. epsilon);
  t

let refresh_threshold t =
  t.noisy_threshold <- t.threshold +. Laplace.sample t.rng ~scale:(2.0 /. t.epsilon)

(* Query with the given true value and sensitivity bound. Above-threshold
   answers release a noisy value at scale 4 * c * sens / epsilon, following
   the standard numeric sparse-vector analysis with c = max_answers. *)
let query t ~sensitivity value =
  if t.halted then Halted
  else begin
    let c = float_of_int t.max_answers in
    let probe =
      value +. Laplace.sample t.rng ~scale:(4.0 *. c *. sensitivity /. t.epsilon)
    in
    if probe >= t.noisy_threshold then begin
      t.answered <- t.answered + 1;
      if t.answered >= t.max_answers then t.halted <- true else refresh_threshold t;
      Above (value +. Laplace.sample t.rng ~scale:(2.0 *. c *. sensitivity /. t.epsilon))
    end
    else Below
  end

let answered t = t.answered
let halted t = t.halted

(* Budget consumed so far: epsilon regardless of answers (the threshold noise
   plus the per-answer releases are calibrated to total epsilon). *)
let epsilon_spent t = t.epsilon
