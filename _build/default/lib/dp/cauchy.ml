(* The standard Cauchy distribution, used by the pure epsilon-DP variant of
   the smooth-sensitivity framework (Nissim, Raskhodnikova, Smith): with a
   beta-smooth upper bound S on local sensitivity and beta <= epsilon/6,
   releasing f(x) + (6S/epsilon) * eta for eta ~ Cauchy is epsilon-DP with
   delta = 0 — unlike the Laplace variant (paper Definition 7), which pays a
   delta. The price is heavy tails: Cauchy noise has no mean or variance. *)

let sample rng ~scale =
  if scale < 0.0 then invalid_arg "Cauchy.sample: negative scale";
  if scale = 0.0 then 0.0
  else
    let u = Rng.float rng 1.0 -. 0.5 in
    (* avoid the poles of tan at +-pi/2 *)
    let u = if Float.abs u >= 0.5 -. 1e-12 then 0.4999999 *. Float.of_int (compare u 0.0) else u in
    scale *. tan (Float.pi *. u)

let add_noise rng ~scale x = x +. sample rng ~scale

let pdf ~scale x =
  if scale <= 0.0 then invalid_arg "Cauchy.pdf";
  scale /. (Float.pi *. ((x *. x) +. (scale *. scale)))

let cdf ~scale x =
  if scale <= 0.0 then invalid_arg "Cauchy.cdf";
  0.5 +. (atan (x /. scale) /. Float.pi)

(* Half-width of the two-sided (1 - alpha) interval. *)
let confidence_width ~scale ~alpha =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Cauchy.confidence_width";
  scale *. tan (Float.pi *. (1.0 -. alpha) /. 2.0)

(* Smoothing parameter for the Cauchy mechanism: beta = epsilon / 6. *)
let beta ~epsilon =
  if epsilon <= 0.0 then invalid_arg "Cauchy.beta";
  epsilon /. 6.0

(* Noise scale for a smooth bound S: 6S / epsilon. *)
let noise_scale ~epsilon smooth_bound =
  if epsilon <= 0.0 then invalid_arg "Cauchy.noise_scale";
  6.0 *. smooth_bound /. epsilon
