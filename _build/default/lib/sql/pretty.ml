(* Render an AST back to SQL text. Binary expressions are fully parenthesised
   so the output reparses to a structurally identical AST (tested by the
   round-trip property). *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let needs_quoting name =
  name = ""
  || Token.is_keyword (String.uppercase_ascii name)
  || (not (Lexer.is_ident_start name.[0]))
  || String.exists (fun c -> not (Lexer.is_ident_char c)) name
  || name <> String.lowercase_ascii name

let ident name = if needs_quoting name then Fmt.str "\"%s\"" name else name

let lit = function
  | Ast.Null -> "NULL"
  | Ast.Bool true -> "TRUE"
  | Ast.Bool false -> "FALSE"
  | Ast.Int i -> string_of_int i
  | Ast.Float f ->
    let s = Fmt.str "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
    else s ^ ".0"
  | Ast.String s -> Fmt.str "'%s'" (escape_string s)

let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "AND"
  | Ast.Or -> "OR"
  | Ast.Concat -> "||"

let col_ref (c : Ast.col_ref) =
  match c.table with
  | Some t -> Fmt.str "%s.%s" (ident t) (ident c.column)
  | None -> ident c.column

let rec expr (e : Ast.expr) =
  match e with
  | Lit l -> lit l
  | Col c -> col_ref c
  | Binop (op, a, b) -> Fmt.str "(%s %s %s)" (expr a) (binop_symbol op) (expr b)
  | Unop (Not, a) -> Fmt.str "(NOT %s)" (expr a)
  | Unop (Neg, a) -> Fmt.str "(- %s)" (expr a)
  | Agg { func; distinct; arg } ->
    let name = String.uppercase_ascii (Ast.agg_func_name func) in
    let body =
      match arg with
      | Ast.Star -> "*"
      | Ast.Arg a -> Fmt.str "%s%s" (if distinct then "DISTINCT " else "") (expr a)
    in
    Fmt.str "%s(%s)" name body
  | Func (name, args) ->
    Fmt.str "%s(%s)" (ident name) (String.concat ", " (List.map expr args))
  | Case { operand; branches; else_ } ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "CASE";
    Option.iter (fun o -> Buffer.add_string buf (" " ^ expr o)) operand;
    List.iter
      (fun (c, v) ->
        Buffer.add_string buf (Fmt.str " WHEN %s THEN %s" (expr c) (expr v)))
      branches;
    Option.iter (fun e -> Buffer.add_string buf (Fmt.str " ELSE %s" (expr e))) else_;
    Buffer.add_string buf " END";
    Buffer.contents buf
  | In { subject; negated; set } ->
    let set_str =
      match set with
      | In_list es -> String.concat ", " (List.map expr es)
      | In_query q -> query q
    in
    Fmt.str "(%s %sIN (%s))" (expr subject) (if negated then "NOT " else "") set_str
  | Between { subject; negated; lo; hi } ->
    Fmt.str "(%s %sBETWEEN %s AND %s)" (expr subject)
      (if negated then "NOT " else "")
      (expr lo) (expr hi)
  | Like { subject; negated; pattern } ->
    Fmt.str "(%s %sLIKE %s)" (expr subject) (if negated then "NOT " else "") (expr pattern)
  | Is_null { subject; negated } ->
    Fmt.str "(%s IS %sNULL)" (expr subject) (if negated then "NOT " else "")
  | Exists q -> Fmt.str "EXISTS (%s)" (query q)
  | Scalar_subquery q -> Fmt.str "(%s)" (query q)
  | Cast (a, ty) -> Fmt.str "CAST(%s AS %s)" (expr a) ty

and projection = function
  | Ast.Proj_star -> "*"
  | Ast.Proj_table_star t -> Fmt.str "%s.*" (ident t)
  | Ast.Proj_expr (e, None) -> expr e
  | Ast.Proj_expr (e, Some a) -> Fmt.str "%s AS %s" (expr e) (ident a)

and table_ref (r : Ast.table_ref) =
  match r with
  | Table { name; alias } ->
    let qualified =
      (* schema-qualified names are stored with an embedded dot *)
      String.concat "." (List.map ident (String.split_on_char '.' name))
    in
    (match alias with
    | Some a -> Fmt.str "%s AS %s" qualified (ident a)
    | None -> qualified)
  | Derived { query = q; alias } -> Fmt.str "(%s) AS %s" (query q) (ident alias)
  | Join { kind; left; right; cond } -> (
    let kind_str = Ast.join_kind_name kind in
    let left_str = table_ref left in
    let right_str =
      match right with
      | Join _ -> Fmt.str "(%s)" (table_ref right)
      | Table _ | Derived _ -> table_ref right
    in
    match cond with
    | On e -> Fmt.str "%s %s %s ON %s" left_str kind_str right_str (expr e)
    | Using cols ->
      Fmt.str "%s %s %s USING (%s)" left_str kind_str right_str
        (String.concat ", " (List.map ident cols))
    | Natural -> Fmt.str "%s NATURAL %s %s" left_str kind_str right_str
    | Cond_none -> Fmt.str "%s %s %s" left_str kind_str right_str)

and select (s : Ast.select) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map projection s.projections));
  if s.from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf (String.concat ", " (List.map table_ref s.from))
  end;
  Option.iter (fun e -> Buffer.add_string buf (" WHERE " ^ expr e)) s.where;
  if s.group_by <> [] then begin
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " (List.map expr s.group_by))
  end;
  Option.iter (fun e -> Buffer.add_string buf (" HAVING " ^ expr e)) s.having;
  Buffer.contents buf

and body (b : Ast.body) =
  match b with
  | Select s -> select s
  | Union { all; left; right } ->
    Fmt.str "%s UNION %s%s" (set_operand left) (if all then "ALL " else "") (set_operand right)
  | Except { all; left; right } ->
    Fmt.str "%s EXCEPT %s%s" (set_operand left) (if all then "ALL " else "") (set_operand right)
  | Intersect { all; left; right } ->
    Fmt.str "%s INTERSECT %s%s" (set_operand left)
      (if all then "ALL " else "")
      (set_operand right)

and set_operand (b : Ast.body) =
  match b with Select s -> select s | _ -> Fmt.str "(%s)" (body b)

and query (q : Ast.query) =
  let buf = Buffer.create 128 in
  if q.ctes <> [] then begin
    Buffer.add_string buf "WITH ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (c : Ast.cte) ->
              let cols =
                match c.cte_columns with
                | [] -> ""
                | cols -> Fmt.str " (%s)" (String.concat ", " (List.map ident cols))
              in
              Fmt.str "%s%s AS (%s)" (ident c.cte_name) cols (query c.cte_query))
            q.ctes));
    Buffer.add_char buf ' '
  end;
  Buffer.add_string buf (body q.body);
  if q.order_by <> [] then begin
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              Fmt.str "%s %s" (expr e)
                (match dir with Ast.Asc -> "ASC" | Ast.Desc -> "DESC"))
            q.order_by))
  end;
  Option.iter (fun n -> Buffer.add_string buf (Fmt.str " LIMIT %d" n)) q.limit;
  Option.iter (fun n -> Buffer.add_string buf (Fmt.str " OFFSET %d" n)) q.offset;
  Buffer.contents buf

let to_string = query
