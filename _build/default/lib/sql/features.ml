(* Query feature extraction mirroring the paper's empirical study (§2):
   relational operators used, join counts/kinds/conditions, self joins,
   aggregation functions, statistical vs raw-data classification and the
   clause-count size statistic. *)

type join_condition_class =
  | Equijoin (* single column-equality predicate (possibly among other terms) *)
  | Column_comparison (* two columns compared with a non-equality operator *)
  | Literal_comparison (* column compared against a literal *)
  | Compound_expression (* anything else: functions, disjunctions, ... *)
  | No_condition (* cross join / missing ON *)

type t = {
  uses_select : bool;
  join_count : int;
  join_kinds : (Ast.join_kind * int) list;
  join_conditions : (join_condition_class * int) list;
  has_self_join : bool;
  equijoins_only : bool;
  uses_union : bool;
  uses_except : bool;
  uses_intersect : bool;
  aggregates : (Ast.agg_func * int) list;
  is_statistical : bool; (* every output column is an aggregate *)
  size : int; (* AST node count, study question 7 *)
  output_columns : int;
}

let bump assoc key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest -> if k = key then (k, n + 1) :: rest else (k, n) :: go rest
  in
  go assoc

(* Is this conjunct a column = column equality between distinct relations?
   Syntactic check only; the semantic check lives in Flex_core. *)
let is_equality_conjunct = function
  | Ast.Binop (Ast.Eq, Ast.Col _, Ast.Col _) -> true
  | _ -> false

let classify_condition (cond : Ast.join_cond) =
  match cond with
  | Ast.Cond_none -> No_condition
  | Ast.Using _ | Ast.Natural -> Equijoin
  | Ast.On e -> (
    let cs = Ast.conjuncts e in
    if List.exists is_equality_conjunct cs then
      if List.length cs = 1 then Equijoin
      else
        (* equality term plus extra predicates still analyses as an equijoin
           (paper §3.3, "Join conditions") *)
        Equijoin
    else
      match cs with
      | [ Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Neq), Ast.Col _, Ast.Col _) ]
        ->
        Column_comparison
      | [ Ast.Binop (_, Ast.Col _, Ast.Lit _) ] | [ Ast.Binop (_, Ast.Lit _, Ast.Col _) ]
        ->
        Literal_comparison
      | _ -> Compound_expression)

(* Self join: some base table contributes rows to both sides (Fig 1d,
   approximated syntactically from table names). *)
let is_self_join left right =
  let module S = Set.Make (String) in
  let l = S.of_list (Ast.base_tables_of_ref left) in
  let r = S.of_list (Ast.base_tables_of_ref right) in
  not (S.is_empty (S.inter l r))

let rec body_set_ops (b : Ast.body) =
  match b with
  | Ast.Select _ -> (false, false, false)
  | Ast.Union { left; right; _ } ->
    let u1, e1, i1 = body_set_ops left and u2, e2, i2 = body_set_ops right in
    (true || u1 || u2, e1 || e2, i1 || i2)
  | Ast.Except { left; right; _ } ->
    let u1, e1, i1 = body_set_ops left and u2, e2, i2 = body_set_ops right in
    (u1 || u2, true || e1 || e2, i1 || i2)
  | Ast.Intersect { left; right; _ } ->
    let u1, e1, i1 = body_set_ops left and u2, e2, i2 = body_set_ops right in
    (u1 || u2, e1 || e2, true || i1 || i2)

let rec first_select (b : Ast.body) =
  match b with
  | Ast.Select s -> s
  | Ast.Union { left; _ } | Ast.Except { left; _ } | Ast.Intersect { left; _ } ->
    first_select left

(* A projection is "statistical" when it is an aggregate application or an
   expression over aggregates / group keys only. We use the conservative
   syntactic test from the study: a query is statistical when every projected
   expression contains an aggregate or is a group-by key. *)
let is_statistical_select (s : Ast.select) =
  let has_agg e =
    Ast.fold_expr (fun acc e -> acc || match e with Ast.Agg _ -> true | _ -> false) false e
  in
  let group_keys = s.group_by in
  let is_group_key e = List.mem e group_keys in
  s.projections <> []
  && List.for_all
       (function
         | Ast.Proj_star | Ast.Proj_table_star _ -> false
         | Ast.Proj_expr (e, _) -> has_agg e || is_group_key e)
       s.projections

let analyze (q : Ast.query) =
  let joins = Ast.joins_of_query q in
  let join_count = List.length joins in
  let join_kinds =
    List.fold_left (fun acc (kind, _, _, _) -> bump acc kind) [] joins
  in
  let join_conditions =
    List.fold_left (fun acc (_, cond, _, _) -> bump acc (classify_condition cond)) [] joins
  in
  let has_self_join =
    List.exists (fun (_, _, left, right) -> is_self_join left right) joins
  in
  let equijoins_only =
    join_count > 0
    && List.for_all (fun (_, cond, _, _) -> classify_condition cond = Equijoin) joins
  in
  let uses_union, uses_except, uses_intersect = body_set_ops q.body in
  let s = first_select q.body in
  let aggregates =
    List.fold_left (fun acc (f, _, _) -> bump acc f) [] (Ast.select_aggregates s)
  in
  {
    uses_select = true;
    join_count;
    join_kinds;
    join_conditions;
    has_self_join;
    equijoins_only;
    uses_union;
    uses_except;
    uses_intersect;
    aggregates;
    is_statistical = is_statistical_select s;
    size = Ast.size_of_query q;
    output_columns = List.length s.projections;
  }

let analyze_sql src =
  match Parser.parse src with Ok q -> Ok (analyze q) | Error e -> Error e
