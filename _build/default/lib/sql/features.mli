(** Query feature extraction mirroring the paper's empirical study (§2):
    operator usage, join counts and classifications, aggregation functions,
    statistical-vs-raw classification and a clause-count size metric. *)

type join_condition_class =
  | Equijoin  (** has a column-equality conjunct (paper §3.3 treatment) *)
  | Column_comparison  (** two columns under a non-equality operator *)
  | Literal_comparison  (** column compared against a literal *)
  | Compound_expression  (** disjunctions, function applications, ... *)
  | No_condition  (** cross join / missing ON *)

type t = {
  uses_select : bool;
  join_count : int;  (** joins anywhere in the query, including subqueries *)
  join_kinds : (Ast.join_kind * int) list;
  join_conditions : (join_condition_class * int) list;
  has_self_join : bool;  (** some base table feeds both sides of a join *)
  equijoins_only : bool;  (** has joins and all of them are equijoins *)
  uses_union : bool;
  uses_except : bool;
  uses_intersect : bool;
  aggregates : (Ast.agg_func * int) list;  (** top-level aggregate uses *)
  is_statistical : bool;  (** every output column is an aggregate or group key *)
  size : int;  (** AST node count (study question 7) *)
  output_columns : int;
}

val classify_condition : Ast.join_cond -> join_condition_class
val is_self_join : Ast.table_ref -> Ast.table_ref -> bool
val analyze : Ast.query -> t
val analyze_sql : string -> (t, string) result
