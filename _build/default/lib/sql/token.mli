(** Lexical tokens of the SQL subset. *)

type t =
  | IDENT of string  (** unquoted identifier, normalised to lowercase *)
  | QIDENT of string  (** ["quoted"] or [`backtick`] identifier, case preserved *)
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | KW of string  (** reserved keyword, uppercased *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | CONCAT_OP  (** [||] *)
  | EOF

type spanned = { tok : t; line : int; col : int }
(** A token with its source position (1-based). *)

val keywords : string list
(** The reserved words; everything else (including aggregate function names)
    lexes as {!IDENT}. *)

val is_keyword : string -> bool
(** [is_keyword s] for uppercased [s]. *)

val pp : t Fmt.t
val to_string : t -> string
