(* Hand-written SQL lexer: case-insensitive keywords, '--' and block comments,
   'single-quoted' strings with doubled-quote escapes, "double-quoted" and
   `backtick` identifiers, and the usual operators. *)

exception Error of { message : string; line : int; col : int }

let error ~line ~col fmt = Fmt.kstr (fun message -> raise (Error { message; line; col })) fmt

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'

let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start_line = st.line and start_col = st.col in
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> error ~line:start_line ~col:start_col "unterminated block comment"
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_trivia st
  | _ -> ()

let lex_word st =
  let start = st.pos in
  while match peek st with Some c when is_ident_char c -> true | _ -> false do
    advance st
  done;
  let word = String.sub st.src start (st.pos - start) in
  let upper = String.uppercase_ascii word in
  if Token.is_keyword upper then Token.KW upper
  else Token.IDENT (String.lowercase_ascii word)

let lex_number st =
  let start = st.pos in
  let start_line = st.line and start_col = st.col in
  while match peek st with Some c when is_digit c -> true | _ -> false do
    advance st
  done;
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
    is_float := true;
    advance st;
    while match peek st with Some c when is_digit c -> true | _ -> false do
      advance st
    done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') -> (
    let after_e =
      match peek2 st with
      | Some ('+' | '-') ->
        if st.pos + 2 < String.length st.src then Some st.src.[st.pos + 2] else None
      | other -> other
    in
    match after_e with
    | Some c when is_digit c ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while match peek st with Some c when is_digit c -> true | _ -> false do
        advance st
      done
    | _ -> ())
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Token.FLOAT_LIT (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Token.INT_LIT i
    | None -> error ~line:start_line ~col:start_col "integer literal out of range: %s" text

let lex_string st =
  let start_line = st.line and start_col = st.col in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error ~line:start_line ~col:start_col "unterminated string literal"
    | Some '\'' ->
      if peek2 st = Some '\'' then begin
        Buffer.add_char buf '\'';
        advance st;
        advance st;
        go ()
      end
      else advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.STRING_LIT (Buffer.contents buf)

let lex_quoted_ident st close =
  let start_line = st.line and start_col = st.col in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error ~line:start_line ~col:start_col "unterminated quoted identifier"
    | Some c when c = close -> advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.QIDENT (Buffer.contents buf)

let next_token st : Token.spanned =
  skip_trivia st;
  let line = st.line and col = st.col in
  let simple tok =
    advance st;
    { Token.tok; line; col }
  in
  let simple2 tok =
    advance st;
    advance st;
    { Token.tok; line; col }
  in
  match peek st with
  | None -> { Token.tok = EOF; line; col }
  | Some c when is_ident_start c -> { Token.tok = lex_word st; line; col }
  | Some c when is_digit c -> { Token.tok = lex_number st; line; col }
  | Some '\'' -> { Token.tok = lex_string st; line; col }
  | Some '"' -> { Token.tok = lex_quoted_ident st '"'; line; col }
  | Some '`' -> { Token.tok = lex_quoted_ident st '`'; line; col }
  | Some '(' -> simple LPAREN
  | Some ')' -> simple RPAREN
  | Some ',' -> simple COMMA
  | Some '.' -> simple DOT
  | Some ';' -> simple SEMI
  | Some '*' -> simple STAR
  | Some '+' -> simple PLUS
  | Some '-' -> simple MINUS
  | Some '/' -> simple SLASH
  | Some '%' -> simple PERCENT
  | Some '=' -> simple EQ
  | Some '<' -> (
    match peek2 st with
    | Some '=' -> simple2 LE
    | Some '>' -> simple2 NEQ
    | _ -> simple LT)
  | Some '>' -> ( match peek2 st with Some '=' -> simple2 GE | _ -> simple GT)
  | Some '!' -> (
    match peek2 st with
    | Some '=' -> simple2 NEQ
    | _ -> error ~line ~col "unexpected character '!'")
  | Some '|' -> (
    match peek2 st with
    | Some '|' -> simple2 CONCAT_OP
    | _ -> error ~line ~col "unexpected character '|'")
  | Some c -> error ~line ~col "unexpected character %C" c

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    match t.tok with Token.EOF -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  Array.of_list (go [])
