(** Render an AST back to SQL text. Binary expressions are fully
    parenthesised, so for every query [q], [parse (to_string q) = Ok q]
    (property-tested). *)

val to_string : Ast.query -> string
val query : Ast.query -> string
val body : Ast.body -> string
val select : Ast.select -> string
val table_ref : Ast.table_ref -> string
val expr : Ast.expr -> string
val projection : Ast.projection -> string

val ident : string -> string
(** Quote an identifier when needed (reserved word, mixed case, symbols). *)
