(** Hand-written SQL lexer: case-insensitive keywords, [--] line and
    [/* ... */] block comments, ['single-quoted'] strings with doubled-quote
    escapes, quoted identifiers, numbers with exponents. *)

exception Error of { message : string; line : int; col : int }

val tokenize : string -> Token.spanned array
(** Tokenise a whole query; the last element is always {!Token.EOF}.
    Raises {!Error} on malformed input. *)

val is_ident_start : char -> bool
val is_ident_char : char -> bool
