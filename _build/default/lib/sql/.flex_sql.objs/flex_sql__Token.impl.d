lib/sql/token.ml: Fmt Hashtbl List
