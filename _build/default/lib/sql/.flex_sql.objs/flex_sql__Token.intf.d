lib/sql/token.mli: Fmt
