lib/sql/ast.mli:
