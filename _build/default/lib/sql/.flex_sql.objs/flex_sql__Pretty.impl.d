lib/sql/pretty.ml: Ast Buffer Fmt Lexer List Option String Token
