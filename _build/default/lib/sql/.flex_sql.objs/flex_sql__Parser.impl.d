lib/sql/parser.ml: Array Ast Fmt Lexer List String Token
