lib/sql/ast.ml: List Option String
