lib/sql/features.ml: Ast List Parser Set String
