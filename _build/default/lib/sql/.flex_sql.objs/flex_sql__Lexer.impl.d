lib/sql/lexer.ml: Array Buffer Fmt List String Token
