lib/sql/features.mli: Ast
