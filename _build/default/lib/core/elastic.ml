module Ast = Flex_sql.Ast
module Sens = Flex_dp.Sens
module Metrics = Flex_engine.Metrics

(* Elastic sensitivity (paper §3): a sound, efficiently computable upper
   bound on the local sensitivity of counting queries with equijoins,
   computed from the query alone plus precomputed max-frequency metrics.

   The implementation follows the paper's description of FLEX's analysis: a
   single dataflow pass over the query tree that propagates, for every
   visible column, its provenance and its max frequency at distance k
   (a polynomial in k, Fig 1c), and for every relation its elastic stability
   (Fig 1b) and ancestor set (Fig 1d). Public tables (§3.6) are modelled as
   stability-0 relations whose frequencies do not grow with k, which makes
   the public-table optimisation fall out of the ordinary join rules. *)

module SS = Set.Make (String)

type attr = Errors.attr = { table : string; column : string }

(* The database facts the analysis may consult. Deliberately *not* the
   database itself: FLEX computes sensitivity from metrics only. *)
type catalog = {
  columns : string -> string list option; (* base-table column names *)
  mf : attr -> int option; (* max frequency of a join key *)
  vr : attr -> float option; (* value range, for SUM/AVG/MIN/MAX *)
  is_public : string -> bool; (* §3.6 registry *)
  is_unique : attr -> bool;
      (* uniqueness enforced by a schema constraint: mf_k = 1 at all
         distances (the "UniqueOptimized" flag of the paper's Fig 4 data) *)
  table_rows : string -> int option; (* base-table cardinalities *)
  cross_joins : bool;
      (* optional extension: under bounded DP (tuples are *replaced*, paper
         §3.2), every neighbour has the same cardinality, so a cross join's
         fan-out is bounded by the constant row count of the other side.
         Off by default to match the paper, which rejects cross joins. *)
  total_rows : int; (* database size n, clamps the smooth scan *)
}

let catalog_of_metrics ?(public_optimization = true) ?(unique_optimization = true)
    ?(cross_joins = false) (m : Metrics.t) =
  {
    columns =
      (fun table ->
        match Metrics.columns m ~table with [] -> None | cols -> Some cols);
    mf = (fun { table; column } -> Metrics.mf m ~table ~column);
    vr = (fun { table; column } -> Metrics.vr m ~table ~column);
    is_public = (fun t -> public_optimization && Metrics.is_public m t);
    is_unique =
      (fun { table; column } ->
        unique_optimization && Metrics.is_primary_key m ~table ~column);
    table_rows = (fun t -> Metrics.row_count m ~table:t);
    cross_joins;
    total_rows = Metrics.total_rows m;
  }

(* --- per-column dataflow facts ------------------------------------------- *)

(* Max frequency at distance k of a visible column, when known. *)
type freq =
  | Freq of Sens.t (* polynomial mf_k *)
  | No_metric of attr (* base column without a collected metric *)
  | Computed (* value computed by an expression or aggregate: bottom *)

type scol = {
  name : string; (* lowercase output name *)
  origin : attr option; (* base column the values come from, if direct *)
  freq : freq;
}

type frame = { fname : string; fcols : scol list }

(* Result of lowering a relation (a FROM tree or a derived table). *)
type rel_info = {
  frames : frame list; (* visible scopes for column resolution *)
  stability : Sens.t; (* elastic stability at distance k *)
  ancestors : SS.t; (* contributing base tables, Fig 1d *)
  joins : int; (* join count, drives the Theorem 3 degree bound *)
  row_bound : int option;
      (* constant upper bound on the relation's cardinality, valid at every
         distance under bounded DP; defined for base tables and their
         selections/projections/groupings and for cross joins thereof *)
}

type env = {
  cat : catalog;
  ctes : (string * rel_info) list;
  cte_asts : (string * Ast.query) list; (* original definitions, for §3.3 root rewriting *)
}

let reject = Errors.unsupported

let resolve_col frames (c : Ast.col_ref) : scol option =
  let col = String.lowercase_ascii c.column in
  match c.table with
  | Some t ->
    let t = String.lowercase_ascii t in
    List.find_map
      (fun f ->
        if String.lowercase_ascii f.fname = t then
          List.find_opt (fun sc -> sc.name = col) f.fcols
        else None)
      frames
  | None -> List.find_map (fun f -> List.find_opt (fun sc -> sc.name = col) f.fcols) frames

let col_ref_string (c : Ast.col_ref) =
  match c.table with Some t -> t ^ "." ^ c.column | None -> c.column

(* --- subquery side conditions ------------------------------------------------ *)

(* Predicates (WHERE/HAVING) may contain subqueries; a subquery over private
   data makes the filter's stability unbounded, so FLEX only accepts
   predicate subqueries that read public tables (or CTEs over them). *)
let assert_subqueries_public env (e : Ast.expr) =
  let tables_public (q : Ast.query) =
    let names = Ast.base_tables_of_query q in
    List.for_all
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) env.ctes with
        | Some info -> SS.for_all env.cat.is_public info.ancestors
        | None -> env.cat.is_public name)
      names
  in
  List.iter
    (fun q ->
      if not (tables_public q) then reject Errors.Private_subquery_in_predicate)
    (Ast.expr_subqueries e)

(* --- joins ---------------------------------------------------------------------- *)

(* Pick the equijoin term of an ON condition: the first column-equality
   conjunct whose sides resolve into opposite subtrees with usable
   frequencies (paper §3.3, "Join conditions"). *)
let find_equijoin_keys lframes rframes (cond : Ast.join_cond) =
  let resolve_pair a b =
    match (resolve_col lframes a, resolve_col rframes b) with
    | Some l, Some r -> Some (l, r)
    | _ -> (
      match (resolve_col lframes b, resolve_col rframes a) with
      | Some l, Some r -> Some (l, r)
      | _ -> None)
  in
  match cond with
  | Ast.Cond_none -> reject Errors.Cross_join
  | Ast.On e -> (
    let candidates =
      List.filter_map
        (function
          | Ast.Binop (Ast.Eq, Ast.Col a, Ast.Col b) -> resolve_pair a b
          | _ -> None)
        (Ast.conjuncts e)
    in
    match candidates with
    | [] -> reject (Errors.Non_equijoin (Flex_sql.Pretty.expr e))
    | pairs -> (
      (* prefer a pair whose frequencies are both usable *)
      let usable (l, r) =
        match (l.freq, r.freq) with Freq _, Freq _ -> true | _ -> false
      in
      match List.find_opt usable pairs with
      | Some pair -> pair
      | None -> List.hd pairs))
  | Ast.Using (col :: _) ->
    let c = { Ast.table = None; column = col } in
    (match (resolve_col lframes c, resolve_col rframes c) with
    | Some l, Some r -> (l, r)
    | _ -> reject (Errors.Non_equijoin ("USING (" ^ col ^ ")")))
  | Ast.Using [] -> reject Errors.Cross_join
  | Ast.Natural -> (
    let lcols = List.concat_map (fun f -> f.fcols) lframes in
    let rcols = List.concat_map (fun f -> f.fcols) rframes in
    let shared =
      List.find_opt (fun lc -> List.exists (fun rc -> rc.name = lc.name) rcols) lcols
    in
    match shared with
    | Some lc ->
      let rc = List.find (fun rc -> rc.name = lc.name) rcols in
      (lc, rc)
    | None -> reject Errors.Cross_join)

let freq_sens_of name = function
  | Freq s -> s
  | No_metric a -> reject (Errors.Missing_metric a)
  | Computed -> reject (Errors.Join_key_not_base name)

(* mf_k propagation through a join (Fig 1c): every column of one side gets
   its frequency multiplied by the other side's join-key frequency. Outer
   joins additionally admit one null-extended copy per row, hence the +1. *)
let scale_frame_freqs ~outer other_key_freq frame =
  let factor =
    if outer then Sens.add other_key_freq Sens.one else other_key_freq
  in
  {
    frame with
    fcols =
      List.map
        (fun sc ->
          match sc.freq with
          | Freq s -> { sc with freq = Freq (Sens.mul s factor) }
          | No_metric _ | Computed -> sc)
        frame.fcols;
  }

(* Elastic stability of a join (Fig 1b), with outer joins doubled: a changed
   row can both gain a match and return another row to null-extended form. *)
let join_stability ~self ~outer lkey_freq rkey_freq sl sr =
  let inner =
    if self then
      Sens.add
        (Sens.add (Sens.mul lkey_freq sr) (Sens.mul rkey_freq sl))
        (Sens.mul sl sr)
    else Sens.max_ (Sens.mul lkey_freq sr) (Sens.mul rkey_freq sl)
  in
  if outer then Sens.scale 2.0 inner else inner

(* --- lowering ---------------------------------------------------------------------- *)

let rec lower_table_ref env (tr : Ast.table_ref) : rel_info =
  match tr with
  | Ast.Table { name; alias } -> (
    let label = Option.value alias ~default:name in
    match List.assoc_opt (String.lowercase_ascii name) env.ctes with
    | Some info -> (
      match info.frames with
      | [ f ] -> { info with frames = [ { f with fname = label } ] }
      | _ -> { info with frames = [ { fname = label; fcols = [] } ] })
    | None -> (
      match env.cat.columns name with
      | None -> Errors.reject (Errors.Analysis_error ("unknown table " ^ name))
      | Some columns ->
        let public = env.cat.is_public name in
        let scol column =
          let a = { table = String.lowercase_ascii name; column } in
          let freq =
            if env.cat.is_unique a then
              (* uniqueness is a schema constraint, so it also holds in every
                 neighbouring database: mf_k = 1 for all k *)
              Freq Sens.one
            else
              match env.cat.mf a with
              | None -> No_metric a
              | Some m ->
                (* public tables do not change between neighbours: no +k *)
                if public then Freq (Sens.const (float_of_int m))
                else Freq (Sens.linear (float_of_int m) 1.0)
          in
          { name = column; origin = Some a; freq }
        in
        {
          frames = [ { fname = label; fcols = List.map scol columns } ];
          stability = (if public then Sens.zero else Sens.one);
          ancestors = (if public then SS.empty else SS.singleton (String.lowercase_ascii name));
          joins = 0;
          row_bound = env.cat.table_rows name;
        }))
  | Ast.Derived { query; alias } ->
    let info = lower_query env query in
    let cols = List.concat_map (fun f -> f.fcols) info.frames in
    { info with frames = [ { fname = alias; fcols = cols } ] }
  | Ast.Join { kind; left; right; cond } ->
    let li = lower_table_ref env left in
    let ri = lower_table_ref env right in
    if kind = Ast.Cross then cross_join env li ri
    else begin
      let lkey, rkey = find_equijoin_keys li.frames ri.frames cond in
      let lf = freq_sens_of lkey.name lkey.freq in
      let rf = freq_sens_of rkey.name rkey.freq in
      let outer = match kind with Ast.Inner -> false | _ -> true in
      let self = not (SS.is_empty (SS.inter li.ancestors ri.ancestors)) in
      let stability = join_stability ~self ~outer lf rf li.stability ri.stability in
      let lframes = List.map (scale_frame_freqs ~outer rf) li.frames in
      let rframes = List.map (scale_frame_freqs ~outer lf) ri.frames in
      {
        frames = lframes @ rframes;
        stability;
        ancestors = SS.union li.ancestors ri.ancestors;
        joins = li.joins + ri.joins + 1;
        row_bound = None;
      }
    end

(* Cross joins (optional extension, see [catalog.cross_joins]): under bounded
   DP the cardinality of each side is the same in every neighbouring
   database, so a changed row on one side produces at most rows(other side)
   changed output rows; column frequencies multiply by the other side's
   constant row count. *)
and cross_join env li ri : rel_info =
  if not env.cat.cross_joins then reject Errors.Cross_join;
  match (li.row_bound, ri.row_bound) with
  | None, _ | _, None -> reject Errors.Cross_join
  | Some rows_l, Some rows_r ->
    let nl = Sens.const (float_of_int rows_l) in
    let nr = Sens.const (float_of_int rows_r) in
    let self = not (SS.is_empty (SS.inter li.ancestors ri.ancestors)) in
    let stability = join_stability ~self ~outer:false nl nr li.stability ri.stability in
    let lframes = List.map (scale_frame_freqs ~outer:false nr) li.frames in
    let rframes = List.map (scale_frame_freqs ~outer:false nl) ri.frames in
    {
      frames = lframes @ rframes;
      stability;
      ancestors = SS.union li.ancestors ri.ancestors;
      joins = li.joins + ri.joins + 1;
      row_bound = Some (rows_l * rows_r);
    }

(* Lower a full FROM clause. Comma-separated items are cartesian products,
   which elastic sensitivity cannot bound. *)
and lower_from env (from : Ast.table_ref list) : rel_info =
  match from with
  | [] ->
    (* FROM-less SELECT: constant relation, touches no private data *)
    { frames = []; stability = Sens.zero; ancestors = SS.empty; joins = 0; row_bound = Some 1 }
  | [ tr ] -> lower_table_ref env tr
  | tr :: rest ->
    (* comma-separated FROM items are cross joins *)
    List.fold_left
      (fun acc tr -> cross_join env acc (lower_table_ref env tr))
      (lower_table_ref env tr) rest

(* The FROM+WHERE part of a select: selection is stability-preserving
   (Fig 1b), so only the predicate's subqueries need vetting. *)
and lower_relation env (s : Ast.select) : rel_info =
  let info = lower_from env s.from in
  Option.iter (assert_subqueries_public env) s.where;
  Option.iter (assert_subqueries_public env) s.having;
  info

(* Lower a select used as a relation (derived table / CTE body). *)
and lower_select_as_rel env (s : Ast.select) : rel_info =
  let info = lower_relation env s in
  let frames = info.frames in
  let aggs = Ast.select_aggregates s in
  let grouped = s.group_by <> [] in
  let single_group_key =
    match s.group_by with [ Ast.Col _ ] -> true | _ -> false
  in
  let lower_projection (p : Ast.projection) : scol list =
    match p with
    | Ast.Proj_star -> List.concat_map (fun f -> f.fcols) frames
    | Ast.Proj_table_star t ->
      List.concat_map
        (fun f ->
          if String.lowercase_ascii f.fname = String.lowercase_ascii t then f.fcols
          else [])
        frames
    | Ast.Proj_expr (e, alias) -> (
      let named default = Option.value alias ~default |> String.lowercase_ascii in
      match e with
      | Ast.Col c -> (
        match resolve_col frames c with
        | Some sc ->
          let is_sole_key = single_group_key && List.mem e s.group_by in
          let freq =
            if is_sole_key then
              (* grouping collapses duplicates of the sole key: mf_k = 1 *)
              Freq Sens.one
            else sc.freq
          in
          [ { sc with name = named c.column; freq } ]
        | None ->
          Errors.reject (Errors.Analysis_error ("unknown column " ^ col_ref_string c)))
      | Ast.Agg _ -> [ { name = named "agg"; origin = None; freq = Computed } ]
      | _ -> [ { name = named "expr"; origin = None; freq = Computed } ])
  in
  List.iter (fun (e, _) -> assert_subqueries_public env e)
    (List.filter_map
       (function Ast.Proj_expr (e, a) -> Some (e, a) | _ -> None)
       s.projections);
  let cols = List.concat_map lower_projection s.projections in
  let stability =
    if aggs <> [] || grouped then
      if grouped then
        (* a grouped aggregate used as a relation: each changed input row
           touches at most two histogram rows (Theorem 1's argument) *)
        Sens.scale 2.0 info.stability
      else (* scalar aggregate: one output row, stability 1 (Fig 1b) *)
        Sens.one
    else info.stability
  in
  {
    frames = [ { fname = "_select"; fcols = cols } ];
    stability;
    ancestors = info.ancestors;
    joins = info.joins;
    (* selection, projection, dedup and grouping only ever shrink the
       relation, so the input's constant cardinality bound still holds *)
    row_bound = info.row_bound;
  }

and lower_body env (b : Ast.body) : rel_info =
  match b with
  | Ast.Select s -> lower_select_as_rel env s
  | Ast.Union _ | Ast.Except _ | Ast.Intersect _ -> reject Errors.Set_operation

and lower_query env (q : Ast.query) : rel_info =
  let env = extend_with_ctes env q.ctes in
  let info = lower_body env q.body in
  match q.limit with
  | None -> info
  | Some _ ->
    (* LIMIT after an ORDER BY: one changed input row can additionally swap
       one row across the cut boundary, so the stability doubles. *)
    { info with stability = Sens.scale 2.0 info.stability }

and extend_with_ctes env (ctes : Ast.cte list) : env =
  List.fold_left
    (fun env (cte : Ast.cte) ->
      let info = lower_query env cte.cte_query in
      let env =
        {
          env with
          cte_asts = (String.lowercase_ascii cte.cte_name, cte.cte_query) :: env.cte_asts;
        }
      in
      let info =
        if cte.cte_columns = [] then info
        else begin
          let cols = List.concat_map (fun f -> f.fcols) info.frames in
          if List.length cols <> List.length cte.cte_columns then
            Errors.reject
              (Errors.Analysis_error ("CTE " ^ cte.cte_name ^ " column list arity mismatch"));
          let renamed =
            List.map2
              (fun sc n -> { sc with name = String.lowercase_ascii n })
              cols cte.cte_columns
          in
          { info with frames = [ { fname = cte.cte_name; fcols = renamed } ] }
        end
      in
      { env with ctes = (String.lowercase_ascii cte.cte_name, info) :: env.ctes })
    env ctes

(* --- top-level query analysis ------------------------------------------------------ *)

type column_kind =
  | Count_cell
  | Sum_cell of attr
  | Avg_cell of attr
  | Min_cell of attr
  | Max_cell of attr

type column_spec =
  | Aggregate_col of { kind : column_kind; sens : Sens.t; name : string }
  | Group_key_col of { origin : attr option; name : string }

type analysis = {
  columns : column_spec list; (* aligned with the query's projections *)
  is_histogram : bool;
  stability : Sens.t; (* elastic stability of the counted relation *)
  joins : int;
  database_rows : int; (* n, for the smooth-sensitivity scan clamp *)
}

(* Degree bound j^2 used by the Theorem 3 cutoff is implied by Sens.degree,
   so smoothing uses the actual polynomial degree rather than the looser
   j^2 bound. *)

let attr_of_agg_arg frames (arg : Ast.agg_arg) func =
  match arg with
  | Ast.Star -> Errors.reject (Errors.Analysis_error "aggregate over * needs COUNT")
  | Ast.Arg (Ast.Col c) -> (
    match resolve_col frames c with
    | Some { origin = Some a; _ } -> a
    | Some { origin = None; _ } ->
      reject
        (Errors.Join_key_not_base
           (Fmt.str "%s argument %s" (Ast.agg_func_name func) (col_ref_string c)))
    | None -> Errors.reject (Errors.Analysis_error ("unknown column " ^ col_ref_string c)))
  | Ast.Arg _ -> reject Errors.Arithmetic_on_aggregate

let vr_of env (a : attr) =
  match env.cat.vr a with
  | Some v -> v
  | None -> reject (Errors.Missing_value_range a)

let rec analyze_query env (q : Ast.query) : analysis =
  let env = extend_with_ctes env q.ctes in
  match q.body with
  | Ast.Union _ | Ast.Except _ | Ast.Intersect _ -> reject Errors.Set_operation
  | Ast.Select s -> analyze_select env s

and analyze_select env (s : Ast.select) : analysis =
  let aggs = Ast.select_aggregates s in
  if aggs = [] && s.group_by = [] then analyze_passthrough env s
  else begin
    let info = lower_relation env s in
    let frames = info.frames in
    let is_histogram = s.group_by <> [] in
    let histogram_factor sens = if is_histogram then Sens.scale 2.0 sens else sens in
    (* A projection matches a group key either structurally or, for plain
       column references, by column name (qualifiers may differ). *)
    let is_group_key e =
      List.mem e s.group_by
      ||
      match e with
      | Ast.Col c ->
        List.exists
          (function
            | Ast.Col c' ->
              String.lowercase_ascii c'.Ast.column = String.lowercase_ascii c.Ast.column
            | _ -> false)
          s.group_by
      | _ -> false
    in
    let classify (p : Ast.projection) : column_spec =
      match p with
      | Ast.Proj_star | Ast.Proj_table_star _ -> reject Errors.Raw_data_query
      | Ast.Proj_expr (e, alias) -> (
        let name =
          match (alias, e) with
          | Some a, _ -> String.lowercase_ascii a
          | None, Ast.Col c -> String.lowercase_ascii c.column
          | None, Ast.Agg { func; _ } -> Ast.agg_func_name func
          | None, _ -> "expr"
        in
        match e with
        | Ast.Agg { func; distinct = _; arg } -> (
          match func with
          | Ast.Count ->
            Aggregate_col
              { kind = Count_cell; sens = histogram_factor info.stability; name }
          | Ast.Sum ->
            let a = attr_of_agg_arg frames arg func in
            let range = vr_of env a in
            Aggregate_col
              {
                kind = Sum_cell a;
                sens = histogram_factor (Sens.scale range info.stability);
                name;
              }
          | Ast.Avg ->
            let a = attr_of_agg_arg frames arg func in
            let range = vr_of env a in
            Aggregate_col
              {
                kind = Avg_cell a;
                sens = histogram_factor (Sens.scale range info.stability);
                name;
              }
          | Ast.Min ->
            let a = attr_of_agg_arg frames arg func in
            let range = vr_of env a in
            Aggregate_col { kind = Min_cell a; sens = Sens.const range; name }
          | Ast.Max ->
            let a = attr_of_agg_arg frames arg func in
            let range = vr_of env a in
            Aggregate_col { kind = Max_cell a; sens = Sens.const range; name }
          | Ast.Median | Ast.Stddev -> reject (Errors.Unsupported_aggregate func))
        | e when is_group_key e ->
          let origin =
            match e with
            | Ast.Col c -> (
              match resolve_col frames c with Some sc -> sc.origin | None -> None)
            | _ -> None
          in
          Group_key_col { origin; name }
        | e when has_aggregate e -> reject Errors.Arithmetic_on_aggregate
        | _ -> reject Errors.Raw_data_query)
    in
    let columns = List.map classify s.projections in
    (* a grouped query with no aggregate column is SELECT DISTINCT in
       disguise: it would release raw (protected) key values unperturbed *)
    if
      not
        (List.exists
           (function Aggregate_col _ -> true | Group_key_col _ -> false)
           columns)
    then reject Errors.Raw_data_query;
    {
      columns;
      is_histogram;
      stability = info.stability;
      joins = info.joins;
      database_rows = env.cat.total_rows;
    }
  end

and has_aggregate e =
  Ast.fold_expr (fun acc e -> acc || match e with Ast.Agg _ -> true | _ -> false) false e

(* SELECT col, ... FROM (aggregating subquery): treat the inner relation as
   the query root (paper §3.3), mapping projected names onto the inner
   analysis. *)
and analyze_passthrough env (s : Ast.select) : analysis =
  if s.where <> None || s.having <> None || s.distinct then reject Errors.Raw_data_query;
  let inner_analysis =
    match s.from with
    | [ Ast.Derived { query; _ } ] -> analyze_query env query
    | [ Ast.Table { name; _ } ] -> (
      match List.assoc_opt (String.lowercase_ascii name) env.cte_asts with
      | Some q -> analyze_query env q
      | None -> reject Errors.Raw_data_query)
    | _ -> reject Errors.Raw_data_query
  in
  let find_col name =
    let name = String.lowercase_ascii name in
    let matches spec =
      match spec with
      | Aggregate_col { name = n; _ } | Group_key_col { name = n; _ } -> n = name
    in
    match List.find_opt matches inner_analysis.columns with
    | Some spec -> spec
    | None -> reject Errors.Raw_data_query
  in
  let columns =
    List.map
      (function
        | Ast.Proj_star | Ast.Proj_table_star _ -> reject Errors.Raw_data_query
        | Ast.Proj_expr (Ast.Col c, alias) -> (
          let spec = find_col c.column in
          match (spec, alias) with
          | Aggregate_col a, Some alias ->
            Aggregate_col { a with name = String.lowercase_ascii alias }
          | Group_key_col g, Some alias ->
            Group_key_col { g with name = String.lowercase_ascii alias }
          | spec, None -> spec)
        | Ast.Proj_expr (_, _) -> reject Errors.Raw_data_query)
      s.projections
  in
  { inner_analysis with columns }

(* --- public entry points --------------------------------------------------------------- *)

let empty_env cat = { cat; ctes = []; cte_asts = [] }

let analyze cat (q : Ast.query) : (analysis, Errors.reason) result =
  match analyze_query (empty_env cat) q with
  | a -> Ok a
  | exception Errors.Reject r -> Error r

let analyze_sql cat sql : (analysis, Errors.reason) result =
  match Flex_sql.Parser.parse sql with
  | Error e -> Error (Errors.Parse_error e)
  | Ok q -> analyze cat q

(* Elastic stability of the relation named by a FROM tree; exposed for tests
   and the worked example of §3.4. *)
let stability_of_table_ref cat (tr : Ast.table_ref) : Sens.t =
  (lower_table_ref (empty_env cat) tr).stability

let aggregate_columns (a : analysis) =
  List.filter_map
    (function Aggregate_col c -> Some (c.name, c.kind, c.sens) | Group_key_col _ -> None)
    a.columns
