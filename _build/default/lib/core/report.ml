module Value = Flex_engine.Value
module Smooth = Flex_dp.Smooth
module Sens = Flex_dp.Sens

(* Human-readable reports of a FLEX release: what was asked, what privacy
   was spent, how the sensitivity decomposed, and how accurate the answer is
   expected to be. Rendered as markdown for CLI output and audit logs. *)

let buf_add = Buffer.add_string

let pp_value = Value.to_string

let smoothing_name : Flex.smoothing -> string = function
  | `Smooth -> "smooth sensitivity (Definition 7)"
  | `Elastic_k0 -> "elastic sensitivity at k = 0 (no smoothing; not covered by the DP proof)"

let noise_name : Flex.noise -> string = function
  | `Laplace -> "Laplace"
  | `Cauchy -> "Cauchy (pure epsilon-DP)"

let kind_name (k : Elastic.column_kind) =
  match k with
  | Elastic.Count_cell -> "COUNT"
  | Elastic.Sum_cell a -> Fmt.str "SUM(%s.%s)" a.table a.column
  | Elastic.Avg_cell a -> Fmt.str "AVG(%s.%s)" a.table a.column
  | Elastic.Min_cell a -> Fmt.str "MIN(%s.%s)" a.table a.column
  | Elastic.Max_cell a -> Fmt.str "MAX(%s.%s)" a.table a.column

let of_release ?(sql = "<query>") ~options (r : Flex.release) : string =
  let b = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> buf_add b (s ^ "\n")) fmt in
  line "# Differentially private release";
  line "";
  line "```sql";
  line "%s" sql;
  line "```";
  line "";
  line "- privacy: epsilon = %g, delta = %g (%s noise, %s)" r.Flex.epsilon r.Flex.delta
    (noise_name options.Flex.noise)
    (smoothing_name options.Flex.smoothing);
  line "- query class: %s"
    (if r.Flex.analysis.Elastic.is_histogram then "histogram (per-bin counts)"
     else "scalar statistics");
  line "- joins: %d" r.Flex.analysis.Elastic.joins;
  if r.Flex.bins_enumerated then
    line "- all public-domain bins enumerated (bin presence reveals nothing)";
  line "";
  line "## Sensitivity";
  line "";
  line "| column | aggregate | elastic sensitivity ES(k) | smooth bound S (at k) | noise scale |";
  line "|---|---|---|---|---|";
  List.iter
    (fun (c : Flex.column_release) ->
      line "| %s | %s | %s | %.4g (k = %d) | %.4g |" c.Flex.name (kind_name c.Flex.kind)
        (Sens.to_string c.Flex.elastic)
        c.Flex.smooth.Smooth.smooth_bound c.Flex.smooth.Smooth.argmax_k
        c.Flex.noise_scale)
    r.Flex.column_releases;
  line "";
  line "## Expected accuracy";
  line "";
  List.iter
    (fun (name, width) ->
      line "- %s: with 95%% probability the noise is within +-%.4g" name width)
    (Flex.confidence_intervals ~alpha:0.05 ~options r);
  line "";
  line "## Released result (%d rows)" (List.length r.Flex.noisy.rows);
  line "";
  line "| %s |" (String.concat " | " r.Flex.noisy.columns);
  line "|%s|" (String.concat "|" (List.map (fun _ -> "---") r.Flex.noisy.columns));
  let shown = ref 0 in
  List.iter
    (fun row ->
      if !shown < 25 then begin
        incr shown;
        line "| %s |" (String.concat " | " (Array.to_list (Array.map pp_value row)))
      end)
    r.Flex.noisy.rows;
  if List.length r.Flex.noisy.rows > 25 then
    line "| ... (%d more rows) |" (List.length r.Flex.noisy.rows - 25);
  Buffer.contents b

let of_rejection ?(sql = "<query>") (reason : Errors.reason) : string =
  let b = Buffer.create 256 in
  let line fmt = Fmt.kstr (fun s -> buf_add b (s ^ "\n")) fmt in
  line "# Query rejected";
  line "";
  line "```sql";
  line "%s" sql;
  line "```";
  line "";
  line "- reason: %s" (Errors.to_string reason);
  (match reason with
  | Errors.Unsupported (Errors.Non_equijoin _) ->
    line "- hint: elastic sensitivity needs an equality term between base-table \
          columns in every join condition (paper section 3.7.1)"
  | Errors.Unsupported Errors.Cross_join ->
    line "- hint: cartesian products have no join key to bound; enable the \
          bounded-DP cross-join extension only if your engine enforces \
          constant cardinalities"
  | Errors.Unsupported Errors.Raw_data_query ->
    line "- hint: differential privacy covers statistics; select aggregates \
          (COUNT, SUM, AVG, MIN, MAX) instead of raw rows"
  | Errors.Unsupported Errors.Private_subquery_in_predicate ->
    line "- hint: rewrite the predicate subquery as a join, or mark the \
          subquery's tables public if they are"
  | _ -> ());
  Buffer.contents b
