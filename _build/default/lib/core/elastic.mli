module Ast = Flex_sql.Ast
module Sens = Flex_dp.Sens
module Metrics = Flex_engine.Metrics

(** Elastic sensitivity (paper §3): a sound, efficiently computable upper
    bound on the local sensitivity of counting queries with equijoins,
    computed from the query alone plus precomputed database metrics.

    The analysis is a single dataflow pass over the query tree that
    propagates, for every visible column, its provenance and its max
    frequency at distance [k] (a polynomial in [k], Fig 1c), and for every
    relation its elastic stability (Fig 1b) and ancestor set (Fig 1d).
    Public tables (§3.6) are stability-0 relations whose frequencies do not
    grow with [k]; schema-unique keys keep frequency 1 at every distance.
    SUM/AVG/MIN/MAX are supported via the value-range metric (§3.7.2);
    everything the paper's definition cannot bound is rejected with a typed
    {!Errors.reason} (§3.7.1). *)

type attr = Errors.attr = { table : string; column : string }

(** The database facts the analysis may consult — deliberately *not* the
    database itself. *)
type catalog = {
  columns : string -> string list option;  (** base-table column names *)
  mf : attr -> int option;  (** max frequency of a join key *)
  vr : attr -> float option;  (** value range, for SUM/AVG/MIN/MAX *)
  is_public : string -> bool;  (** §3.6 registry *)
  is_unique : attr -> bool;  (** schema-enforced uniqueness: mf_k = 1 *)
  table_rows : string -> int option;  (** base-table cardinalities *)
  cross_joins : bool;
      (** optional extension: bound cross joins using the other side's
          constant cardinality (sound under bounded DP, where neighbours
          replace tuples). Off by default: the paper rejects cross joins. *)
  total_rows : int;  (** database size n, clamps the smooth scan *)
}

val catalog_of_metrics :
  ?public_optimization:bool ->
  ?unique_optimization:bool ->
  ?cross_joins:bool ->
  Metrics.t ->
  catalog
(** The optimisations default to on and [cross_joins] to off; toggling them
    reproduces the Figure 7 and `ablation` bench comparisons. *)

(** {2 Analysis results} *)

type column_kind =
  | Count_cell
  | Sum_cell of attr
  | Avg_cell of attr
  | Min_cell of attr
  | Max_cell of attr

type column_spec =
  | Aggregate_col of { kind : column_kind; sens : Sens.t; name : string }
      (** [sens] is the cell's elastic sensitivity as a function of k, with
          the histogram factor and value-range scaling already applied *)
  | Group_key_col of { origin : attr option; name : string }
      (** provenance drives histogram bin enumeration *)

type analysis = {
  columns : column_spec list;  (** aligned with the query's projections *)
  is_histogram : bool;
  stability : Sens.t;  (** elastic stability of the counted relation *)
  joins : int;
  database_rows : int;
}

val analyze : catalog -> Ast.query -> (analysis, Errors.reason) result
val analyze_sql : catalog -> string -> (analysis, Errors.reason) result

val stability_of_table_ref : catalog -> Ast.table_ref -> Sens.t
(** Elastic stability of a FROM tree (exposed for tests and the §3.4
    worked example). @raise Errors.Reject on unsupported shapes. *)

val aggregate_columns : analysis -> (string * column_kind * Sens.t) list
