module Value = Flex_engine.Value
module Database = Flex_engine.Database
module Table = Flex_engine.Table
module Executor = Flex_engine.Executor

(* Histogram bin enumeration (paper §4): when every GROUP BY key is drawn
   from a public, finite domain, FLEX returns a row for *every* possible bin
   (missing bins get a noisy zero), so the presence or absence of a bin
   reveals nothing. *)

let max_bins = 20_000

(* Positions of group-key and aggregate columns in the output row. *)
let partition_columns (a : Elastic.analysis) =
  let keys = ref [] and aggs = ref [] in
  List.iteri
    (fun i spec ->
      match spec with
      | Elastic.Group_key_col { origin; _ } -> keys := (i, origin) :: !keys
      | Elastic.Aggregate_col _ -> aggs := i :: !aggs)
    a.columns;
  (List.rev !keys, List.rev !aggs)

(* Bin labels are enumerable when every key column originates in a public
   table (so its value domain is itself non-protected). *)
let enumerable cat (a : Elastic.analysis) =
  let keys, _ = partition_columns a in
  a.is_histogram && keys <> []
  && List.for_all
       (fun (_, origin) ->
         match origin with
         | Some (attr : Elastic.attr) -> cat.Elastic.is_public attr.table
         | None -> false)
       keys

let distinct_column_values db (attr : Elastic.attr) =
  match Database.find_opt db attr.table with
  | None -> None
  | Some t -> (
    match Table.column_index t attr.column with
    | None -> None
    | Some i ->
      let seen = Hashtbl.create 64 in
      let out = ref [] in
      Array.iter
        (fun row ->
          let v = row.(i) in
          if (not (Value.is_null v)) && not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            out := v :: !out
          end)
        (Table.rows t);
      Some (List.rev !out))

(* Extend [result] with all missing bins, each with zero aggregates (noise is
   added afterwards by the mechanism, uniformly over all rows). Returns None
   when enumeration is not possible (protected or unbounded labels). *)
let enumerate cat db (a : Elastic.analysis) (result : Executor.result_set) :
    Executor.result_set option =
  if not (enumerable cat a) then None
  else begin
    let keys, aggs = partition_columns a in
    let domains =
      List.map
        (fun (i, origin) ->
          match origin with
          | Some attr -> (
            match distinct_column_values db attr with
            | Some vs -> (i, vs)
            | None -> (i, []))
          | None -> (i, []))
        keys
    in
    if List.exists (fun (_, vs) -> vs = []) domains then None
    else begin
      let total = List.fold_left (fun acc (_, vs) -> acc * List.length vs) 1 domains in
      if total > max_bins then None
      else begin
        let ncols = List.length result.columns in
        let existing = Hashtbl.create 256 in
        List.iter
          (fun row ->
            let key = List.map (fun (i, _) -> row.(i)) keys in
            Hashtbl.replace existing key ())
          result.rows;
        (* cartesian product of label domains, in domain order *)
        let rec combos = function
          | [] -> [ [] ]
          | (i, vs) :: rest ->
            let tails = combos rest in
            List.concat_map (fun v -> List.map (fun t -> (i, v) :: t) tails) vs
        in
        let missing =
          combos domains
          |> List.filter (fun combo ->
               let key = List.map snd combo in
               not (Hashtbl.mem existing key))
          |> List.map (fun combo ->
               let row = Array.make ncols Value.Null in
               List.iter (fun (i, v) -> row.(i) <- v) combo;
               List.iter (fun i -> row.(i) <- Value.Int 0) aggs;
               row)
        in
        Some { result with rows = result.rows @ missing }
      end
    end
  end
