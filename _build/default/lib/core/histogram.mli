module Database = Flex_engine.Database
module Executor = Flex_engine.Executor

(** Histogram bin enumeration (paper §4): when every GROUP BY key is drawn
    from a public, finite domain, FLEX returns a row for every possible bin
    (missing bins get a noisy zero), so the presence or absence of a bin
    reveals nothing. *)

val max_bins : int
(** Enumeration is skipped above this many label combinations. *)

val enumerable : Elastic.catalog -> Elastic.analysis -> bool
(** True when the query is a histogram and each key column originates in a
    public table. *)

val enumerate :
  Elastic.catalog ->
  Database.t ->
  Elastic.analysis ->
  Executor.result_set ->
  Executor.result_set option
(** Extend the result with all missing bins (zero aggregates, noise added
    later by the mechanism); [None] when enumeration is not possible. *)
