module Ast = Flex_sql.Ast

(* Typed rejection reasons. The taxonomy mirrors the paper's error
   classification in §5.1 (parse errors / unsupported queries / other) and
   the unsupported-query discussion in §3.7.1. *)

type attr = { table : string; column : string }

type unsupported =
  | Non_equijoin of string (* join condition with no usable equality term *)
  | Cross_join (* cartesian products have no key to bound *)
  | Join_key_not_base of string
    (* join key computed (e.g. from an aggregate), so no mf metric exists *)
  | Missing_metric of attr (* mf metric unavailable for a base join key *)
  | Missing_value_range of attr (* vr metric needed by SUM/AVG/MIN/MAX missing *)
  | Raw_data_query (* returns non-aggregated data: out of DP scope *)
  | Arithmetic_on_aggregate (* e.g. SUM(x)/COUNT(x): not a plain aggregate *)
  | Unsupported_aggregate of Ast.agg_func (* MEDIAN, STDDEV *)
  | Set_operation (* UNION/EXCEPT/INTERSECT *)
  | Private_subquery_in_predicate
    (* WHERE/HAVING subquery reads private tables: filter stability unbounded *)

type reason =
  | Parse_error of string
  | Unsupported of unsupported
  | Analysis_error of string (* unknown table/column and similar *)

exception Reject of reason

let reject r = raise (Reject r)

let unsupported u = reject (Unsupported u)

(* Buckets used by the §5.1 success-rate experiment. *)
type bucket = Parse_bucket | Unsupported_bucket | Other_bucket

let bucket_of = function
  | Parse_error _ -> Parse_bucket
  | Unsupported _ -> Unsupported_bucket
  | Analysis_error _ -> Other_bucket

let pp_unsupported ppf = function
  | Non_equijoin cond -> Fmt.pf ppf "non-equijoin condition: %s" cond
  | Cross_join -> Fmt.string ppf "cross join (cartesian product)"
  | Join_key_not_base what ->
    Fmt.pf ppf "join key %s is not drawn from an original table" what
  | Missing_metric { table; column } ->
    Fmt.pf ppf "no max-frequency metric for %s.%s" table column
  | Missing_value_range { table; column } ->
    Fmt.pf ppf "no value-range metric for %s.%s" table column
  | Raw_data_query -> Fmt.string ppf "query returns raw (non-aggregated) data"
  | Arithmetic_on_aggregate ->
    Fmt.string ppf "arithmetic over aggregation results is not supported"
  | Unsupported_aggregate f ->
    Fmt.pf ppf "aggregation function %s is not supported"
      (String.uppercase_ascii (Ast.agg_func_name f))
  | Set_operation -> Fmt.string ppf "set operations (UNION/EXCEPT/INTERSECT)"
  | Private_subquery_in_predicate ->
    Fmt.string ppf "subquery over private tables used in a predicate"

let pp_reason ppf = function
  | Parse_error m -> Fmt.pf ppf "parse error: %s" m
  | Unsupported u -> Fmt.pf ppf "unsupported query: %a" pp_unsupported u
  | Analysis_error m -> Fmt.pf ppf "analysis error: %s" m

let to_string r = Fmt.str "%a" pp_reason r
