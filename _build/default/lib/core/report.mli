(** Markdown reports of FLEX releases and rejections, for CLI output and
    audit logs: privacy parameters, sensitivity decomposition, expected
    accuracy (confidence widths), and the released rows. *)

val of_release : ?sql:string -> options:Flex.options -> Flex.release -> string

val of_rejection : ?sql:string -> Errors.reason -> string
(** Includes an actionable hint for the common rejection classes. *)
