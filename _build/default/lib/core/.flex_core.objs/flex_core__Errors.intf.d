lib/core/errors.mli: Flex_sql Fmt
