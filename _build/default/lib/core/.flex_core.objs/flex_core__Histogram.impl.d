lib/core/histogram.ml: Array Elastic Flex_engine Hashtbl List
