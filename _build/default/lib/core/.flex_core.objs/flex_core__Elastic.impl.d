lib/core/elastic.ml: Errors Flex_dp Flex_engine Flex_sql Fmt List Option Set String
