lib/core/report.ml: Array Buffer Elastic Errors Flex Flex_dp Flex_engine Fmt List String
