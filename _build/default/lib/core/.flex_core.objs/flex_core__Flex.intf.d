lib/core/flex.mli: Elastic Errors Flex_dp Flex_engine Flex_sql
