lib/core/report.mli: Errors Flex
