lib/core/histogram.mli: Elastic Flex_engine
