lib/core/flex.ml: Array Elastic Errors Flex_dp Flex_engine Flex_sql Float Hashtbl Histogram List Option
