lib/core/errors.ml: Flex_sql Fmt String
