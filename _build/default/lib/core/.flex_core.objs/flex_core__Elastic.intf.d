lib/core/elastic.mli: Errors Flex_dp Flex_engine Flex_sql
