module Ast = Flex_sql.Ast

(** Typed rejection reasons, mirroring the paper's §5.1 error classification
    (parse / unsupported / other) and the unsupported-query taxonomy of
    §3.7.1. *)

type attr = { table : string; column : string }

type unsupported =
  | Non_equijoin of string  (** join condition with no usable equality term *)
  | Cross_join  (** cartesian products have no key to bound *)
  | Join_key_not_base of string
      (** join key computed (e.g. from an aggregate): no mf metric exists *)
  | Missing_metric of attr  (** mf metric unavailable for a base join key *)
  | Missing_value_range of attr  (** vr needed by SUM/AVG/MIN/MAX missing *)
  | Raw_data_query  (** returns non-aggregated data: out of DP scope *)
  | Arithmetic_on_aggregate  (** e.g. SUM(x)/COUNT(x) *)
  | Unsupported_aggregate of Ast.agg_func  (** MEDIAN, STDDEV *)
  | Set_operation  (** UNION / EXCEPT / INTERSECT *)
  | Private_subquery_in_predicate
      (** WHERE/HAVING subquery reads private tables *)

type reason =
  | Parse_error of string
  | Unsupported of unsupported
  | Analysis_error of string  (** unknown table/column and similar *)

exception Reject of reason

val reject : reason -> 'a
val unsupported : unsupported -> 'a

(** Buckets of the §5.1 success-rate experiment. *)
type bucket = Parse_bucket | Unsupported_bucket | Other_bucket

val bucket_of : reason -> bucket
val pp_unsupported : unsupported Fmt.t
val pp_reason : reason Fmt.t
val to_string : reason -> string
