module Ast = Flex_sql.Ast
module Sens = Flex_dp.Sens
module Smooth = Flex_dp.Smooth
module Elastic = Flex_core.Elastic
module Errors = Flex_core.Errors

(* A hand-built catalog over a small schema:
   - trips(id unique, driver_id mf=50, city_id mf=500, fare vr=100)
   - drivers(id unique, city_id mf=20)
   - cities(id unique, name mf=1) -- public
   - edges(source mf=65, dest mf=65) -- the §3.4 graph *)
let catalog ?(public_cities = true) () =
  let tables =
    [
      ("trips", [ "id"; "driver_id"; "city_id"; "fare"; "status" ]);
      ("drivers", [ "id"; "city_id"; "status" ]);
      ("cities", [ "id"; "name" ]);
      ("edges", [ "source"; "dest" ]);
    ]
  in
  let mf (a : Elastic.attr) =
    match (a.table, a.column) with
    | "trips", "id" -> Some 1
    | "trips", "driver_id" -> Some 50
    | "trips", "city_id" -> Some 500
    | "trips", _ -> Some 3000
    | "drivers", "id" -> Some 1
    | "drivers", "city_id" -> Some 20
    | "drivers", _ -> Some 100
    | "cities", "id" -> Some 1
    | "cities", "name" -> Some 1
    | "edges", _ -> Some 65
    | _ -> None
  in
  {
    Elastic.columns = (fun t -> List.assoc_opt t tables);
    mf;
    vr =
      (fun a ->
        match (a.table, a.column) with "trips", "fare" -> Some 100.0 | _ -> None);
    is_public = (fun t -> public_cities && t = "cities");
    is_unique = (fun _ -> false);
    table_rows = (fun _ -> Some 1000);
    cross_joins = false;
    total_rows = 100_000;
  }

let analyze ?public_cities sql =
  Elastic.analyze_sql (catalog ?public_cities ()) sql

let stability ?public_cities sql =
  match analyze ?public_cities sql with
  | Ok a -> a.Elastic.stability
  | Error r -> Alcotest.failf "rejected: %s" (Errors.to_string r)

let first_sens sql =
  match analyze sql with
  | Ok a -> (
    match Elastic.aggregate_columns a with
    | (_, _, s) :: _ -> s
    | [] -> Alcotest.fail "no aggregate columns")
  | Error r -> Alcotest.failf "rejected: %s" (Errors.to_string r)

let expect_reject sql check =
  match analyze sql with
  | Ok _ -> Alcotest.failf "expected rejection: %s" sql
  | Error r ->
    if not (check r) then Alcotest.failf "wrong rejection for %s: %s" sql (Errors.to_string r)

let check_poly name sens expected_coeffs =
  (* compare by evaluation on several points *)
  List.iter
    (fun k ->
      let expected =
        List.fold_left
          (fun (acc, pow) c -> (acc +. (c *. Float.pow (float_of_int k) pow), pow +. 1.0))
          (0.0, 0.0) expected_coeffs
        |> fst
      in
      Alcotest.(check (float 1e-6)) (Fmt.str "%s at k=%d" name k) expected (Sens.eval sens k))
    [ 0; 1; 2; 5; 19; 100 ]

let stability_tests =
  [
    Alcotest.test_case "single table" `Quick (fun () ->
        check_poly "table" (stability "SELECT COUNT(*) FROM trips") [ 1.0 ]);
    Alcotest.test_case "selection and projection preserve stability" `Quick (fun () ->
        check_poly "where"
          (stability "SELECT COUNT(*) FROM trips WHERE status = 'completed'")
          [ 1.0 ];
        check_poly "derived"
          (stability "SELECT COUNT(*) FROM (SELECT driver_id FROM trips) t")
          [ 1.0 ]);
    Alcotest.test_case "one-to-many join takes the max branch" `Quick (fun () ->
        (* max(mf_k(driver_id,trips)*1, mf_k(id,drivers)*1) = 50 + k *)
        check_poly "trips-drivers"
          (stability "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id")
          [ 50.0; 1.0 ]);
    Alcotest.test_case "public table join multiplies by constant mf" `Quick (fun () ->
        (* cities public: stability = mf(cities.id) * S(trips) = 1, no +k *)
        check_poly "trips-cities"
          (stability "SELECT COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id")
          [ 1.0 ]);
    Alcotest.test_case "public optimisation toggle" `Quick (fun () ->
        (* with the optimisation off, cities is private: max(500+k, 1+k) *)
        check_poly "no-opt"
          (stability ~public_cities:false
             "SELECT COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id")
          [ 500.0; 1.0 ]);
    Alcotest.test_case "self join adds all three classes" `Quick (fun () ->
        (* per Fig 1b: (50+k) + (50+k) + 1 = 101 + 2k *)
        check_poly "self"
          (stability
             "SELECT COUNT(*) FROM trips a JOIN trips b ON a.driver_id = b.driver_id")
          [ 101.0; 2.0 ]);
    Alcotest.test_case "paper 3.4: first triangle join" `Quick (fun () ->
        check_poly "e1 x e2"
          (stability "SELECT COUNT(*) FROM edges e1 JOIN edges e2 ON e1.dest = e2.source")
          [ 131.0; 2.0 ]);
    Alcotest.test_case "paper 3.4: full triangle query follows Fig 1" `Quick (fun () ->
        (* Strictly applying Fig 1(b,c):
           S(e1xe2) = 131 + 2k
           mf_k(e2.dest, e1xe2) = (65+k)^2   (propagated through the join)
           S = (65+k)^2 + (65+k)(131+2k) + (131+2k) = 3k^2 + 393k + 12871.
           (The paper's worked example plugs the base-table mf in directly
           and reports 2k^2 + 199k + 8711; Fig 1(c) requires propagation.) *)
        check_poly "triangles"
          (stability Flex_workload.Graph.triangle_sql)
          [ 12871.0; 393.0; 3.0 ]);
    Alcotest.test_case "outer joins double the bound" `Quick (fun () ->
        check_poly "left join"
          (stability "SELECT COUNT(*) FROM trips t LEFT JOIN drivers d ON t.driver_id = d.id")
          [ 100.0; 2.0 ]);
    Alcotest.test_case "histogram doubles sensitivity but not stability" `Quick (fun () ->
        let sql = "SELECT status, COUNT(*) FROM trips GROUP BY status" in
        (match analyze sql with
        | Ok a ->
          Alcotest.(check bool) "histogram" true a.Elastic.is_histogram;
          check_poly "stability" a.Elastic.stability [ 1.0 ];
          (match Elastic.aggregate_columns a with
          | [ (_, Elastic.Count_cell, s) ] -> check_poly "cell sens" s [ 2.0 ]
          | _ -> Alcotest.fail "expected one count column")
        | Error r -> Alcotest.failf "rejected: %s" (Errors.to_string r)));
    Alcotest.test_case "grouped subquery as relation doubles stability" `Quick (fun () ->
        check_poly "q13 shape"
          (stability
             "SELECT n, COUNT(*) FROM (SELECT driver_id, COUNT(*) AS n FROM trips \
              GROUP BY driver_id) g GROUP BY n")
          [ 2.0 ]);
    Alcotest.test_case "scalar count subquery has stability 1" `Quick (fun () ->
        check_poly "count as relation"
          (stability "SELECT COUNT(*) FROM (SELECT COUNT(*) AS n FROM trips) c")
          [ 1.0 ]);
    Alcotest.test_case "join keys through subquery projections" `Quick (fun () ->
        (* driver_id passes through the derived table untouched *)
        check_poly "subquery key"
          (stability
             "SELECT COUNT(*) FROM (SELECT driver_id FROM trips WHERE status = \
              'completed') t JOIN drivers d ON t.driver_id = d.id")
          [ 50.0; 1.0 ]);
    Alcotest.test_case "sole group key joins with frequency 1" `Quick (fun () ->
        (* Grouping dedupes the sole key, so its mf_k is 1 in the output; the
           grouped relation has stability 2, and the drivers key is unique:
           max(1 * S(drivers), (1+k) * 2) = 2 + 2k. *)
        check_poly "grouped key join"
          (stability
             "SELECT COUNT(*) FROM (SELECT driver_id FROM trips GROUP BY \
              driver_id) g JOIN drivers d ON g.driver_id = d.id")
          [ 2.0; 2.0 ]);
  ]

let extension_tests =
  [
    Alcotest.test_case "sum uses vr times stability" `Quick (fun () ->
        check_poly "sum" (first_sens "SELECT SUM(fare) FROM trips") [ 100.0 ]);
    Alcotest.test_case "sum through a join scales" `Quick (fun () ->
        check_poly "sum join"
          (first_sens
             "SELECT SUM(t.fare) FROM trips t JOIN drivers d ON t.driver_id = d.id")
          [ 5000.0; 100.0 ]);
    Alcotest.test_case "avg mirrors sum" `Quick (fun () ->
        check_poly "avg" (first_sens "SELECT AVG(fare) FROM trips") [ 100.0 ]);
    Alcotest.test_case "min and max use the constant vr bound" `Quick (fun () ->
        check_poly "min" (first_sens "SELECT MIN(fare) FROM trips") [ 100.0 ];
        check_poly "max"
          (first_sens "SELECT MAX(t.fare) FROM trips t JOIN drivers d ON t.driver_id = d.id")
          [ 100.0 ]);
    Alcotest.test_case "missing vr rejects" `Quick (fun () ->
        expect_reject "SELECT SUM(status) FROM trips" (function
          | Errors.Unsupported (Errors.Missing_value_range _) -> true
          | _ -> false));
    Alcotest.test_case "count distinct accepted" `Quick (fun () ->
        check_poly "count distinct"
          (first_sens "SELECT COUNT(DISTINCT driver_id) FROM trips")
          [ 1.0 ]);
    Alcotest.test_case "pass-through projection of aggregating subquery" `Quick (fun () ->
        (* the paper's pi_count Count(trips) example *)
        check_poly "unwrap"
          (first_sens "SELECT n FROM (SELECT COUNT(*) AS n FROM trips) c")
          [ 1.0 ]);
  ]

let rejection_tests =
  [
    Alcotest.test_case "non-equijoin" `Quick (fun () ->
        expect_reject "SELECT COUNT(*) FROM trips a JOIN trips b ON a.fare > b.fare"
          (function Errors.Unsupported (Errors.Non_equijoin _) -> true | _ -> false));
    Alcotest.test_case "cross join" `Quick (fun () ->
        expect_reject "SELECT COUNT(*) FROM trips CROSS JOIN drivers" (function
          | Errors.Unsupported Errors.Cross_join -> true
          | _ -> false);
        expect_reject "SELECT COUNT(*) FROM trips, drivers" (function
          | Errors.Unsupported Errors.Cross_join -> true
          | _ -> false));
    Alcotest.test_case "join key computed from aggregate (paper 3.7.1)" `Quick (fun () ->
        expect_reject
          "WITH a AS (SELECT COUNT(*) AS c FROM trips), b AS (SELECT COUNT(*) AS c \
           FROM drivers) SELECT COUNT(*) FROM a JOIN b ON a.c = b.c"
          (function
          | Errors.Unsupported (Errors.Join_key_not_base _) -> true
          | _ -> false));
    Alcotest.test_case "raw data query" `Quick (fun () ->
        expect_reject "SELECT id, fare FROM trips" (function
          | Errors.Unsupported Errors.Raw_data_query -> true
          | _ -> false);
        expect_reject "SELECT * FROM trips" (function
          | Errors.Unsupported Errors.Raw_data_query -> true
          | _ -> false));
    Alcotest.test_case "arithmetic over aggregates" `Quick (fun () ->
        expect_reject "SELECT COUNT(*) / 2 FROM trips" (function
          | Errors.Unsupported Errors.Arithmetic_on_aggregate -> true
          | _ -> false);
        expect_reject "SELECT SUM(fare) / COUNT(*) FROM trips" (function
          | Errors.Unsupported Errors.Arithmetic_on_aggregate -> true
          | _ -> false));
    Alcotest.test_case "unsupported aggregates" `Quick (fun () ->
        expect_reject "SELECT MEDIAN(fare) FROM trips" (function
          | Errors.Unsupported (Errors.Unsupported_aggregate Ast.Median) -> true
          | _ -> false);
        expect_reject "SELECT STDDEV(fare) FROM trips" (function
          | Errors.Unsupported (Errors.Unsupported_aggregate Ast.Stddev) -> true
          | _ -> false));
    Alcotest.test_case "set operations" `Quick (fun () ->
        expect_reject "SELECT COUNT(*) FROM trips UNION SELECT COUNT(*) FROM drivers"
          (function Errors.Unsupported Errors.Set_operation -> true | _ -> false));
    Alcotest.test_case "private subquery in predicate" `Quick (fun () ->
        expect_reject
          "SELECT COUNT(*) FROM trips WHERE driver_id IN (SELECT id FROM drivers)"
          (function
          | Errors.Unsupported Errors.Private_subquery_in_predicate -> true
          | _ -> false));
    Alcotest.test_case "public subquery in predicate accepted" `Quick (fun () ->
        check_poly "public filter"
          (stability "SELECT COUNT(*) FROM trips WHERE city_id IN (SELECT id FROM cities)")
          [ 1.0 ]);
    Alcotest.test_case "parse errors are classified" `Quick (fun () ->
        (match analyze "SELEC COUNT(*) FROM trips" with
        | Error (Errors.Parse_error _) -> ()
        | Error r -> Alcotest.failf "wrong class: %s" (Errors.to_string r)
        | Ok _ -> Alcotest.fail "expected parse error");
        Alcotest.(check bool) "bucket" true
          (Errors.bucket_of (Errors.Parse_error "x") = Errors.Parse_bucket));
    Alcotest.test_case "unknown table is an analysis error" `Quick (fun () ->
        expect_reject "SELECT COUNT(*) FROM nosuch" (fun r ->
            Errors.bucket_of r = Errors.Other_bucket));
  ]

let smooth_tests =
  [
    Alcotest.test_case "paper 3.4 smoothing parameters" `Quick (fun () ->
        let s = stability Flex_workload.Graph.triangle_sql in
        let beta = Smooth.beta ~epsilon:0.7 ~delta:1e-8 in
        Alcotest.(check (float 1e-6)) "beta" (0.7 /. (2.0 *. log 2e8)) beta;
        let r = Smooth.of_sens ~beta ~n:100_000 s in
        (* brute force over a wide range must agree *)
        let brute = ref 0.0 and brute_k = ref 0 in
        for k = 0 to 10_000 do
          let v = exp (-.beta *. float_of_int k) *. Sens.eval s k in
          if v > !brute then begin
            brute := v;
            brute_k := k
          end
        done;
        Alcotest.(check (float 1e-6)) "smooth max" !brute r.Smooth.smooth_bound;
        Alcotest.(check int) "argmax" !brute_k r.Smooth.argmax_k);
  ]

let suites =
  [
    ("elastic-stability", stability_tests);
    ("elastic-extensions", extension_tests);
    ("elastic-rejections", rejection_tests);
    ("elastic-smooth", smooth_tests);
  ]
