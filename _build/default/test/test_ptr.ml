module Rng = Flex_dp.Rng
module Ptr = Flex_dp.Ptr
module Sens = Flex_dp.Sens
module Elastic = Flex_core.Elastic
module Metrics = Flex_engine.Metrics

let tests =
  [
    Alcotest.test_case "distance bound on a linear ES" `Quick (fun () ->
        (* ES(k) = 10 + k: ES(k) <= 40 up to k = 30, so the bound is 31 *)
        let es k = 10.0 +. float_of_int k in
        Alcotest.(check int) "bound" 31 (Ptr.distance_bound ~sensitivity:40.0 es);
        Alcotest.(check int) "already above" 0 (Ptr.distance_bound ~sensitivity:5.0 es));
    Alcotest.test_case "constant ES passes at any proposal above it" `Quick (fun () ->
        let es _ = 3.0 in
        Alcotest.(check int) "capped scan" 100_000
          (Ptr.distance_bound ~sensitivity:3.0 es));
    Alcotest.test_case "far-from-unstable databases release" `Quick (fun () ->
        let rng = Rng.create ~seed:4 () in
        (* distance bound huge, threshold small: must release *)
        let es _ = 1.0 in
        match Ptr.release rng ~epsilon:1.0 ~delta:1e-6 ~sensitivity:2.0 es 100.0 with
        | Ptr.Released v -> Alcotest.(check bool) "near truth" true (Float.abs (v -. 100.0) < 60.0)
        | Ptr.Refused -> Alcotest.fail "expected release");
    Alcotest.test_case "too-close databases refuse" `Quick (fun () ->
        let rng = Rng.create ~seed:4 () in
        (* ES(0) already exceeds the proposal: distance bound 0 *)
        let es k = 50.0 +. float_of_int k in
        let refused = ref 0 in
        for _ = 1 to 50 do
          match Ptr.release rng ~epsilon:1.0 ~delta:1e-6 ~sensitivity:10.0 es 100.0 with
          | Ptr.Refused -> incr refused
          | Ptr.Released _ -> ()
        done;
        (* threshold = ln(1e6)/0.5 ~ 27.6; Lap(2) almost never reaches it *)
        Alcotest.(check int) "always refused" 50 !refused);
    Alcotest.test_case "drives from a real elastic sensitivity" `Quick (fun () ->
        let rng = Rng.create ~seed:5 () in
        let _, metrics =
          Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes rng
        in
        let cat = Elastic.catalog_of_metrics metrics in
        match
          Elastic.analyze_sql cat
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id"
        with
        | Error r -> Alcotest.failf "rejected: %s" (Flex_core.Errors.to_string r)
        | Ok a -> (
          match Elastic.aggregate_columns a with
          | [ (_, _, sens) ] ->
            let es k = Sens.eval sens k in
            (* proposing twice ES(0) leaves plenty of slack: ES grows by 1
               per unit distance, so the distance bound is about ES(0) *)
            let proposal = 2.0 *. es 0 in
            let bound = Ptr.distance_bound ~sensitivity:proposal es in
            Alcotest.(check bool) "bound positive" true (bound > 0);
            (match Ptr.release rng ~epsilon:1.0 ~delta:1e-6 ~sensitivity:proposal es 1000.0 with
            | Ptr.Released _ -> ()
            | Ptr.Refused -> Alcotest.fail "expected release")
          | _ -> Alcotest.fail "expected one aggregate"));
  ]

let suites = [ ("ptr", tests) ]
