module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Rng = Flex_dp.Rng
module Flex = Flex_core.Flex
module Errors = Flex_core.Errors
module W = Flex_workload

let uber_ctx =
  lazy
    (let rng = Rng.create ~seed:7 () in
     let db, metrics = W.Uber.generate ~sizes:W.Uber.small_sizes rng in
     (db, metrics))

let uber_tests =
  [
    Alcotest.test_case "schema and sizes" `Quick (fun () ->
        let db, _ = Lazy.force uber_ctx in
        List.iter
          (fun t -> Alcotest.(check bool) t true (Database.mem db t))
          [ "trips"; "drivers"; "users"; "cities"; "analytics"; "user_tags" ];
        Alcotest.(check int) "trips" W.Uber.small_sizes.W.Uber.trips
          (Table.row_count (Database.find db "trips")));
    Alcotest.test_case "cities marked public" `Quick (fun () ->
        let _, metrics = Lazy.force uber_ctx in
        Alcotest.(check bool) "public" true (Metrics.is_public metrics "cities");
        Alcotest.(check bool) "trips private" false (Metrics.is_public metrics "trips"));
    Alcotest.test_case "referential integrity" `Quick (fun () ->
        let db, _ = Lazy.force uber_ctx in
        let orphan =
          Executor.run_sql db
            "SELECT COUNT(*) FROM trips t LEFT JOIN drivers d ON t.driver_id = \
             d.id WHERE d.id IS NULL"
        in
        match orphan with
        | Ok { rows = [ [| Value.Int 0 |] ]; _ } -> ()
        | Ok { rows = [ [| v |] ]; _ } ->
          Alcotest.failf "%s orphan trips" (Value.to_string v)
        | _ -> Alcotest.fail "query failed");
    Alcotest.test_case "zipf keys give skewed mf" `Quick (fun () ->
        let _, metrics = Lazy.force uber_ctx in
        let mf = Option.get (Metrics.mf metrics ~table:"trips" ~column:"driver_id") in
        (* far above the uniform expectation trips/drivers = 12.5 *)
        Alcotest.(check bool) "skew" true (mf > 40));
    Alcotest.test_case "analytics agrees with trips rollup" `Quick (fun () ->
        let db, _ = Lazy.force uber_ctx in
        match
          Executor.run_sql db
            "SELECT SUM(completed_trips) FROM analytics"
        with
        | Ok { rows = [ [| total |] ]; _ } -> (
          match
            Executor.run_sql db
              "SELECT COUNT(*) FROM trips WHERE status = 'completed'"
          with
          | Ok { rows = [ [| expected |] ]; _ } ->
            Alcotest.(check bool) "rollup consistent" true (Value.equal total expected)
          | _ -> Alcotest.fail "trips query failed")
        | _ -> Alcotest.fail "analytics query failed");
  ]

let qgen_tests =
  [
    Alcotest.test_case "generated queries parse and execute" `Quick (fun () ->
        let db, _ = Lazy.force uber_ctx in
        let rng = Rng.create ~seed:12 () in
        let queries =
          W.Qgen.generate rng ~count:60 ~n_cities:12 ~n_drivers:120 ~n_users:200
        in
        List.iter
          (fun (q : W.Qgen.t) ->
            (match Flex_sql.Parser.parse q.W.Qgen.sql with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "parse failed: %s (%s)" e q.W.Qgen.sql);
            match Executor.run_sql db q.W.Qgen.sql with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "execution failed: %s (%s)" e q.W.Qgen.sql)
          queries);
    Alcotest.test_case "population queries return counts" `Quick (fun () ->
        let db, _ = Lazy.force uber_ctx in
        let rng = Rng.create ~seed:13 () in
        let queries = W.Qgen.generate rng ~count:20 ~n_cities:12 ~n_drivers:120 ~n_users:200 in
        List.iter
          (fun (q : W.Qgen.t) ->
            let p = W.Experiments.population_of db q.W.Qgen.population_sql in
            Alcotest.(check bool) "non-negative" true (p >= 0))
          queries);
    Alcotest.test_case "most generated queries are FLEX-supported" `Quick (fun () ->
        let db, metrics = Lazy.force uber_ctx in
        let rng = Rng.create ~seed:14 () in
        let queries = W.Qgen.generate rng ~count:50 ~n_cities:12 ~n_drivers:120 ~n_users:200 in
        let options = Flex.options ~epsilon:1.0 ~delta:1e-8 () in
        let ok =
          List.length
            (List.filter
               (fun (q : W.Qgen.t) ->
                 Result.is_ok
                   (Flex.run_sql ~rng ~options ~db ~metrics q.W.Qgen.sql))
               queries)
        in
        Alcotest.(check bool) "all supported" true (ok = 50));
  ]

let corpus_tests =
  [
    Alcotest.test_case "corpus statistics approximate the paper's marginals" `Quick
      (fun () ->
        let rng = Rng.create ~seed:21 () in
        let corpus = W.Corpus.generate rng 3000 in
        let s = W.Corpus.stats corpus in
        Alcotest.(check int) "total" 3000 s.W.Corpus.total;
        Alcotest.(check int) "no parse failures" 0 s.W.Corpus.parse_failures;
        let pct n = 100.0 *. float_of_int n /. 3000.0 in
        let join_pct = pct s.W.Corpus.join_queries in
        Alcotest.(check bool) "join share ~62%" true (join_pct > 56.0 && join_pct < 68.0);
        let stat_pct = pct s.W.Corpus.statistical_queries in
        Alcotest.(check bool) "statistical ~34%" true (stat_pct > 28.0 && stat_pct < 40.0);
        (* Vertica dominates backends *)
        (match s.W.Corpus.backends with
        | (top, _) :: _ -> Alcotest.(check string) "top backend" "Vertica" top
        | [] -> Alcotest.fail "no backends");
        (* equijoins dominate join conditions *)
        match s.W.Corpus.join_conditions with
        | (top, _) :: _ -> Alcotest.(check string) "top condition" "equijoin" top
        | [] -> Alcotest.fail "no join conditions");
    Alcotest.test_case "corpus generation is deterministic" `Quick (fun () ->
        let c1 = W.Corpus.generate (Rng.create ~seed:5 ()) 50 in
        let c2 = W.Corpus.generate (Rng.create ~seed:5 ()) 50 in
        Alcotest.(check bool) "equal" true (c1 = c2));
  ]

let tpch_tests =
  [
    Alcotest.test_case "tables have spec-shaped cardinalities" `Quick (fun () ->
        let rng = Rng.create ~seed:31 () in
        let db, metrics = W.Tpch.generate ~scale:0.002 rng in
        Alcotest.(check int) "regions" 5 (Table.row_count (Database.find db "region"));
        Alcotest.(check int) "nations" 25 (Table.row_count (Database.find db "nation"));
        Alcotest.(check bool) "lineitem largest" true
          (Table.row_count (Database.find db "lineitem")
          > Table.row_count (Database.find db "orders"));
        List.iter
          (fun t -> Alcotest.(check bool) t true (Metrics.is_public metrics t))
          [ "region"; "nation"; "part" ];
        List.iter
          (fun t -> Alcotest.(check bool) t false (Metrics.is_public metrics t))
          [ "customer"; "orders"; "lineitem"; "supplier"; "partsupp" ]);
    Alcotest.test_case "all five queries execute" `Quick (fun () ->
        let rng = Rng.create ~seed:32 () in
        let db, _ = W.Tpch.generate ~scale:0.002 rng in
        List.iter
          (fun (q : W.Tpch.query) ->
            match Executor.run_sql db q.W.Tpch.sql with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s failed: %s" q.W.Tpch.name e)
          W.Tpch.queries);
    Alcotest.test_case "all five queries pass the FLEX analysis" `Quick (fun () ->
        let rng = Rng.create ~seed:33 () in
        let db, metrics = W.Tpch.generate ~scale:0.002 rng in
        let options = Flex.options ~epsilon:0.1 ~delta:1e-8 () in
        List.iter
          (fun (q : W.Tpch.query) ->
            match Flex.run_sql ~rng ~options ~db ~metrics q.W.Tpch.sql with
            | Ok _ -> ()
            | Error r ->
              Alcotest.failf "%s rejected: %s" q.W.Tpch.name (Errors.to_string r))
          W.Tpch.queries);
  ]

let graph_tests =
  [
    Alcotest.test_case "max frequency pinned to 65" `Quick (fun () ->
        let rng = Rng.create ~seed:41 () in
        let _, metrics = W.Graph.generate rng in
        Alcotest.(check (option int)) "source" (Some 65)
          (Metrics.mf metrics ~table:"edges" ~column:"source");
        Alcotest.(check (option int)) "dest" (Some 65)
          (Metrics.mf metrics ~table:"edges" ~column:"dest"));
    Alcotest.test_case "triangle query runs end to end" `Quick (fun () ->
        let rng = Rng.create ~seed:42 () in
        let db, metrics = W.Graph.generate ~nodes:100 ~extra_edges:300 rng in
        let options = Flex.options ~epsilon:0.7 ~delta:1e-8 () in
        match Flex.run_sql ~rng ~options ~db ~metrics W.Graph.triangle_sql with
        | Ok release ->
          Alcotest.(check int) "one bound" 1 (List.length release.Flex.column_releases)
        | Error r -> Alcotest.failf "rejected: %s" (Errors.to_string r));
  ]

let experiments_tests =
  [
    Alcotest.test_case "workload driver produces measurements" `Quick (fun () ->
        let db, metrics = Lazy.force uber_ctx in
        let rng = Rng.create ~seed:51 () in
        let queries = W.Qgen.generate rng ~count:15 ~n_cities:12 ~n_drivers:120 ~n_users:200 in
        let options = Flex.options ~epsilon:0.1 ~delta:1e-8 () in
        let outcome =
          W.Experiments.run_workload ~runs:2 ~rng ~options ~db ~metrics queries
        in
        Alcotest.(check int) "all measured" 15
          (List.length outcome.W.Experiments.measurements
          + List.length outcome.W.Experiments.rejected);
        List.iter
          (fun (m : W.Experiments.measurement) ->
            Alcotest.(check bool) "error non-negative" true (m.W.Experiments.median_error >= 0.0))
          outcome.W.Experiments.measurements);
    Alcotest.test_case "error bins sum to 100%" `Quick (fun () ->
        let bins = W.Experiments.error_bins [ 0.5; 3.0; 7.0; 15.0; 50.0; 500.0 ] in
        let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 bins in
        Alcotest.(check (float 1e-6)) "total" 100.0 total;
        List.iter
          (fun (_, p) -> Alcotest.(check (float 1e-6)) "uniform" (100.0 /. 6.0) p)
          bins);
    Alcotest.test_case "population buckets" `Quick (fun () ->
        let buckets = W.Experiments.population_buckets [ 5; 150; 5000; 50_000 ] in
        List.iter (fun (_, n) -> Alcotest.(check int) "one each" 1 n) buckets);
    Alcotest.test_case "representative programs: SQL and wPINQ agree on truth" `Quick
      (fun () ->
        let db, _ = Lazy.force uber_ctx in
        let rng = Rng.create ~seed:52 () in
        List.iter
          (fun (p : W.Representative.program) ->
            (* the wPINQ total weight at huge epsilon should approximate the
               SQL truth for the non-rescaled scalar programs *)
            match Executor.run_sql db p.W.Representative.sql with
            | Ok _ ->
              let results = p.W.Representative.wpinq db rng ~epsilon:1000.0 in
              Alcotest.(check bool)
                (p.W.Representative.name ^ " produced output")
                true (results <> [])
            | Error e -> Alcotest.failf "%s failed: %s" p.W.Representative.name e)
          W.Representative.programs);
    Alcotest.test_case "comparison driver runs" `Quick (fun () ->
        let db, metrics = Lazy.force uber_ctx in
        let rng = Rng.create ~seed:53 () in
        let options = Flex.options ~epsilon:0.1 ~delta:1e-8 () in
        let rows = W.Experiments.run_comparison ~runs:2 ~rng ~options ~db ~metrics () in
        Alcotest.(check int) "six programs" 6 (List.length rows));
    Alcotest.test_case "tpch driver runs" `Quick (fun () ->
        let rng = Rng.create ~seed:54 () in
        let db, metrics = W.Tpch.generate ~scale:0.002 rng in
        let options = Flex.options ~epsilon:0.1 ~delta:1e-8 () in
        let ok, bad = W.Experiments.run_tpch ~runs:1 ~rng ~options ~db ~metrics () in
        Alcotest.(check int) "five measured" 5 (List.length ok);
        Alcotest.(check int) "none rejected" 0 (List.length bad));
  ]

let suites =
  [
    ("workload-uber", uber_tests);
    ("workload-qgen", qgen_tests);
    ("workload-corpus", corpus_tests);
    ("workload-tpch", tpch_tests);
    ("workload-graph", graph_tests);
    ("workload-experiments", experiments_tests);
  ]

(* --- datagen helpers (appended) ------------------------------------------------ *)

let datagen_tests =
  [
    Alcotest.test_case "day_of_2016 covers the leap year" `Quick (fun () ->
        Alcotest.(check string) "day 0" "2016-01-01" (W.Datagen.day_of_2016 0);
        Alcotest.(check string) "leap day" "2016-02-29" (W.Datagen.day_of_2016 59);
        Alcotest.(check string) "march 1" "2016-03-01" (W.Datagen.day_of_2016 60);
        Alcotest.(check string) "last day" "2016-12-31" (W.Datagen.day_of_2016 365));
    Alcotest.test_case "dates are monotone in the day index" `Quick (fun () ->
        let prev = ref "" in
        for d = 0 to 365 do
          let s = W.Datagen.day_of_2016 d in
          Alcotest.(check bool) "increasing" true (s > !prev);
          prev := s
        done);
    Alcotest.test_case "random_date_range stays in range" `Quick (fun () ->
        let rng = Rng.create ~seed:1 () in
        for _ = 1 to 500 do
          let s = W.Datagen.random_date_range rng ~from_day:100 ~to_day:120 in
          Alcotest.(check bool) s true
            (s >= W.Datagen.day_of_2016 100 && s <= W.Datagen.day_of_2016 120)
        done);
  ]

let suites = suites @ [ ("workload-datagen", datagen_tests) ]
