test/test_acceptance.ml: Alcotest Flex_core Flex_dp Flex_engine Flex_sql Flex_workload Lazy List String
