test/test_engine.ml: Alcotest Array Astring Filename Flex_engine List Sys
