test/test_histogram.ml: Alcotest Array Flex_core Flex_engine List
