test/test_elastic.ml: Alcotest Flex_core Flex_dp Flex_sql Flex_workload Float Fmt List
