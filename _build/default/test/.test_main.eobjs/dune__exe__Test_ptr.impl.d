test/test_ptr.ml: Alcotest Flex_core Flex_dp Flex_engine Flex_workload Float
