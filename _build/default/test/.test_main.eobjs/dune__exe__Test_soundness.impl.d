test/test_soundness.ml: Alcotest Array Flex_core Flex_dp Flex_engine Fmt List Option QCheck QCheck_alcotest String
