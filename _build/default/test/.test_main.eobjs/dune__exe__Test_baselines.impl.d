test/test_baselines.ml: Alcotest Array Flex_baselines Flex_core Flex_dp Flex_engine Flex_sql Float Fun Hashtbl List Result
