test/test_sql.ml: Alcotest Array Astring Flex_sql List QCheck QCheck_alcotest String
