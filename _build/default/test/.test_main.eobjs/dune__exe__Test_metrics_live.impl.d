test/test_metrics_live.ml: Alcotest Array Flex_core Flex_dp Flex_engine Flex_workload Fmt List
