test/test_mwem.ml: Alcotest Array Flex_dp Fmt List
