test/test_props.ml: Alcotest Array Flex_core Flex_dp Flex_engine Flex_workload Fmt Hashtbl Lazy List Option QCheck QCheck_alcotest String
