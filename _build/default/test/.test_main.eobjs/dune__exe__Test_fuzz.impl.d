test/test_fuzz.ml: Flex_core Flex_dp Flex_engine Flex_sql Lazy List Printexc QCheck QCheck_alcotest Test_sql
