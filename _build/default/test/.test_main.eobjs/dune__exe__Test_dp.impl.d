test/test_dp.ml: Alcotest Array Flex_dp Float Fun List QCheck QCheck_alcotest
