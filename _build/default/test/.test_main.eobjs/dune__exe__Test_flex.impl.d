test/test_flex.ml: Alcotest Array Astring Flex_core Flex_dp Flex_engine Flex_workload Float List Option
