(* Cross-module property tests: engine query algebra, elastic-sensitivity
   monotonicity under the optimisations, smoothing invariants, and metrics
   behaviour under row replacement (Lemma 1 at base tables). *)

module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Eval = Flex_engine.Eval
module Rng = Flex_dp.Rng
module Sens = Flex_dp.Sens
module Smooth = Flex_dp.Smooth
module Elastic = Flex_core.Elastic
module Flex = Flex_core.Flex

(* --- random small databases ---------------------------------------------- *)

let rows_gen ncols n =
  QCheck.Gen.(
    list_size (int_range 0 n)
      (map
         (fun vs -> Array.of_list vs)
         (list_repeat ncols
            (oneof
               [
                 map (fun i -> Value.Int i) (int_range 0 4);
                 return Value.Null;
                 map (fun b -> Value.Bool b) bool;
               ]))))

let arb_table =
  QCheck.make
    ~print:(fun rows -> Fmt.str "%d rows" (List.length rows))
    (rows_gen 3 8)

let db_of rows rows2 =
  Database.of_tables
    [
      Table.create ~name:"t" ~columns:[ "a"; "b"; "c" ] rows;
      Table.create ~name:"u" ~columns:[ "a"; "d"; "e" ] rows2;
    ]

let count db sql =
  match Executor.run_sql db sql with
  | Ok { rows = [ [| Value.Int n |] ]; _ } -> n
  | Ok _ -> -1
  | Error e -> Alcotest.failf "query failed (%s): %s" sql e

let engine_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"count(*) equals row count" ~count:100 arb_table
         (fun rows ->
           count (db_of rows []) "SELECT COUNT(*) FROM t" = List.length rows));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"conjunction filters a subset" ~count:100 arb_table
         (fun rows ->
           let db = db_of rows [] in
           count db "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2"
           <= count db "SELECT COUNT(*) FROM t WHERE a = 1"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"where partitions rows (ignoring NULLs)" ~count:100
         arb_table (fun rows ->
           let db = db_of rows [] in
           let p = count db "SELECT COUNT(*) FROM t WHERE a < 2" in
           let n = count db "SELECT COUNT(*) FROM t WHERE NOT (a < 2)" in
           let nulls = count db "SELECT COUNT(*) FROM t WHERE a IS NULL" in
           (* Bool values are not comparable to 2: they evaluate like NULL in
              the predicate, so partition up to non-Int rows *)
           p + n + nulls <= List.length rows));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"union all adds counts" ~count:100
         (QCheck.pair arb_table arb_table) (fun (r1, r2) ->
           let db = db_of r1 r2 in
           count db
             "SELECT COUNT(*) FROM (SELECT a FROM t UNION ALL SELECT a FROM u) s"
           = List.length r1 + List.length r2));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"join count equals key-multiplicity product sum"
         ~count:100 (QCheck.pair arb_table arb_table) (fun (r1, r2) ->
           let db = db_of r1 r2 in
           let joined = count db "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a" in
           (* independent computation from the raw rows *)
           let tally rows =
             let h = Hashtbl.create 8 in
             List.iter
               (fun (row : Value.t array) ->
                 match row.(0) with
                 | Value.Null -> ()
                 | v -> Hashtbl.replace h v (1 + Option.value ~default:0 (Hashtbl.find_opt h v)))
               rows;
             h
           in
           let h1 = tally r1 and h2 = tally r2 in
           let expected =
             Hashtbl.fold
               (fun k n acc ->
                 acc + (n * Option.value ~default:0 (Hashtbl.find_opt h2 k)))
               h1 0
           in
           joined = expected));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"left join preserves left cardinality at least"
         ~count:100 (QCheck.pair arb_table arb_table) (fun (r1, r2) ->
           let db = db_of r1 r2 in
           count db "SELECT COUNT(*) FROM t LEFT JOIN u ON t.a = u.a"
           >= List.length r1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"distinct never increases cardinality" ~count:100
         arb_table (fun rows ->
           let db = db_of rows [] in
           count db "SELECT COUNT(*) FROM (SELECT DISTINCT a, b FROM t) s"
           <= List.length rows));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"limit truncates" ~count:100 arb_table (fun rows ->
           let db = db_of rows [] in
           count db "SELECT COUNT(*) FROM (SELECT a FROM t LIMIT 3) s"
           = min 3 (List.length rows)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"order by produces a sorted column" ~count:100 arb_table
         (fun rows ->
           let db = db_of rows [] in
           match Executor.run_sql db "SELECT a FROM t ORDER BY a ASC" with
           | Error e -> QCheck.Test.fail_report e
           | Ok { rows = out; _ } ->
             let values = List.map (fun r -> r.(0)) out in
             let rec sorted = function
               | a :: (b :: _ as rest) -> Value.compare a b <= 0 && sorted rest
               | _ -> true
             in
             sorted values));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"group counts sum to the filtered total" ~count:100
         arb_table (fun rows ->
           let db = db_of rows [] in
           match
             Executor.run_sql db "SELECT a, COUNT(*) AS n FROM t GROUP BY a"
           with
           | Error e -> QCheck.Test.fail_report e
           | Ok { rows = out; _ } ->
             let total =
               List.fold_left
                 (fun acc r ->
                   acc + Option.value ~default:0 (Value.to_int r.(1)))
                 0 out
             in
             total = List.length rows));
  ]

(* --- LIKE ------------------------------------------------------------------ *)

let like_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"a literal pattern matches only itself" ~count:200
         QCheck.(pair printable_string printable_string)
         (fun (s, t) ->
           QCheck.assume
             (not (String.exists (fun c -> c = '%' || c = '_') s)
             && not (String.exists (fun c -> c = '%' || c = '_') t));
           Eval.like_match ~pattern:s t = (s = t)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"%s% matches any superstring" ~count:200
         QCheck.(triple printable_string printable_string printable_string)
         (fun (pre, s, post) ->
           QCheck.assume (not (String.exists (fun c -> c = '%' || c = '_') s));
           Eval.like_match ~pattern:("%" ^ s ^ "%") (pre ^ s ^ post)));
  ]

(* --- elastic sensitivity monotonicity ---------------------------------------- *)

let uber_metrics =
  lazy
    (let rng = Rng.create ~seed:7 () in
     let _, metrics = Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes rng in
     metrics)

let first_bound ~public_optimization ~unique_optimization sql =
  let metrics = Lazy.force uber_metrics in
  let cat =
    Elastic.catalog_of_metrics ~public_optimization ~unique_optimization metrics
  in
  match Elastic.analyze_sql cat sql with
  | Ok a -> (
    match Elastic.aggregate_columns a with
    | (_, _, s) :: _ -> Some s
    | [] -> None)
  | Error _ -> None

let opt_queries =
  [
    "SELECT COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id";
    "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id";
    "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id";
    "SELECT COUNT(*) FROM trips a JOIN trips b ON a.rider_id = b.rider_id";
    "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id GROUP BY c.name";
  ]

let elastic_props =
  [
    Alcotest.test_case "optimisations never increase the bound" `Quick (fun () ->
        List.iter
          (fun sql ->
            let get ~p ~u =
              match first_bound ~public_optimization:p ~unique_optimization:u sql with
              | Some s -> s
              | None -> Alcotest.failf "rejected: %s" sql
            in
            let all_on = get ~p:true ~u:true in
            let no_pub = get ~p:false ~u:true in
            let no_uni = get ~p:true ~u:false in
            let none = get ~p:false ~u:false in
            List.iter
              (fun k ->
                let v = Sens.eval all_on k in
                Alcotest.(check bool) "<= no-public" true (v <= Sens.eval no_pub k +. 1e-9);
                Alcotest.(check bool) "<= no-unique" true (v <= Sens.eval no_uni k +. 1e-9);
                Alcotest.(check bool) "<= none" true (v <= Sens.eval none k +. 1e-9))
              [ 0; 1; 5; 50 ])
          opt_queries);
    Alcotest.test_case "k0 bound never exceeds the smooth bound" `Quick (fun () ->
        let metrics = Lazy.force uber_metrics in
        List.iter
          (fun sql ->
            let bound smoothing =
              let options = Flex.options ~epsilon:0.1 ~delta:1e-8 ~smoothing () in
              match Flex.analyze_only ~options ~metrics sql with
              | Ok (_, (_, _, smooth) :: _) -> smooth.Smooth.smooth_bound
              | _ -> Alcotest.failf "analysis failed: %s" sql
            in
            Alcotest.(check bool) sql true (bound `Elastic_k0 <= bound `Smooth +. 1e-9))
          opt_queries);
  ]

(* --- metrics under row replacement (Lemma 1 base case) ------------------------ *)

let metrics_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"replacing one row changes mf by at most 1" ~count:100
         (QCheck.pair arb_table (QCheck.make QCheck.Gen.(pair (int_range 0 7) (int_range 0 4))))
         (fun (rows, (i, v)) ->
           QCheck.assume (rows <> []);
           let i = i mod List.length rows in
           let t = Table.create ~name:"t" ~columns:[ "a"; "b"; "c" ] rows in
           let t' =
             Table.with_row t i [| Value.Int v; Value.Null; Value.Null |]
           in
           let mf_of t = Metrics.compute_mf t "a" in
           abs (mf_of t - mf_of t') <= 1));
  ]

(* --- smoothing invariants ------------------------------------------------------ *)

let smooth_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"argmax respects the theorem 3 cutoff" ~count:100
         (QCheck.make
            QCheck.Gen.(
              map2
                (fun c0 c1 -> Sens.linear (float_of_int c0) (float_of_int c1))
                (int_range 0 100) (int_range 0 5)))
         (fun s ->
           let beta = 0.05 in
           let r = Smooth.of_sens ~beta s in
           float_of_int r.Smooth.argmax_k
           <= (float_of_int (max 1 (Sens.degree s)) /. beta) +. 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"smooth bound dominates ES(0) and scales with S" ~count:100
         (QCheck.make QCheck.Gen.(map (fun c -> Sens.const (float_of_int c)) (int_range 0 50)))
         (fun s ->
           let r = Smooth.of_sens ~beta:0.01 s in
           r.Smooth.smooth_bound >= Sens.eval s 0 -. 1e-9
           && Smooth.noise_scale ~epsilon:0.5 r
              >= Smooth.noise_scale ~epsilon:1.0 r -. 1e-9));
  ]

let suites =
  [
    ("props-engine", engine_props);
    ("props-like", like_props);
    ("props-elastic", elastic_props);
    ("props-metrics", metrics_props);
    ("props-smooth", smooth_props);
  ]

(* --- more engine algebra (appended) -------------------------------------------- *)

let more_engine_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"inner join count is symmetric" ~count:100
         (QCheck.pair arb_table arb_table) (fun (r1, r2) ->
           let db = db_of r1 r2 in
           count db "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a"
           = count db "SELECT COUNT(*) FROM u JOIN t ON t.a = u.a"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"full join contains both outer joins" ~count:100
         (QCheck.pair arb_table arb_table) (fun (r1, r2) ->
           let db = db_of r1 r2 in
           let full = count db "SELECT COUNT(*) FROM t FULL JOIN u ON t.a = u.a" in
           full >= count db "SELECT COUNT(*) FROM t LEFT JOIN u ON t.a = u.a"
           && full >= count db "SELECT COUNT(*) FROM t RIGHT JOIN u ON t.a = u.a"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"except and intersect partition the left side" ~count:100
         (QCheck.pair arb_table arb_table) (fun (r1, r2) ->
           let db = db_of r1 r2 in
           let distinct_left =
             count db "SELECT COUNT(*) FROM (SELECT DISTINCT a FROM t) s"
           in
           let except =
             count db
               "SELECT COUNT(*) FROM (SELECT a FROM t EXCEPT SELECT a FROM u) s"
           in
           let inter =
             count db
               "SELECT COUNT(*) FROM (SELECT a FROM t INTERSECT SELECT a FROM u) s"
           in
           except + inter = distinct_left));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cross join count is the product" ~count:100
         (QCheck.pair arb_table arb_table) (fun (r1, r2) ->
           let db = db_of r1 r2 in
           count db "SELECT COUNT(*) FROM t CROSS JOIN u"
           = List.length r1 * List.length r2));
  ]

let suites = suites @ [ ("props-engine-more", more_engine_props) ]
