module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Sens = Flex_dp.Sens
module Elastic = Flex_core.Elastic
module Errors = Flex_core.Errors

(* Empirical validation of Theorem 1: elastic sensitivity at distance k upper
   bounds the true local sensitivity at distance k, brute-forced over every
   neighbouring database. Databases are tiny (so neighbour enumeration is
   exhaustive) and metrics are computed from the true database, exactly as
   FLEX would. *)

(* Domains: table a(k, v) and b(k, w); keys in 1..3, payloads in 1..2. *)
let key_domain = [ 1; 2; 3 ]
let payload_domain = [ 1; 2 ]

let all_tuples =
  List.concat_map
    (fun k -> List.map (fun v -> [| Value.Int k; Value.Int v |]) payload_domain)
    key_domain

let db_of (a_rows, b_rows) =
  Database.of_tables
    [
      Table.create ~name:"a" ~columns:[ "k"; "v" ] a_rows;
      Table.create ~name:"b" ~columns:[ "k"; "w" ] b_rows;
    ]

(* All databases at distance exactly <= 1 from db (replace one row of one
   table by any domain tuple). *)
let neighbors (a_rows, b_rows) =
  let replace rows i r = List.mapi (fun j row -> if j = i then r else row) rows in
  let of_table rows rebuild =
    List.concat
      (List.mapi
         (fun i _ -> List.map (fun r -> rebuild (replace rows i r)) all_tuples)
         rows)
  in
  of_table a_rows (fun a -> (a, b_rows)) @ of_table b_rows (fun b -> (a_rows, b))

let count db sql =
  match Executor.run_sql db sql with
  | Ok { rows = [ [| v |] ]; _ } -> Option.value ~default:0 (Value.to_int v)
  | Ok _ -> Alcotest.failf "expected scalar result for %s" sql
  | Error e -> Alcotest.failf "execution failed (%s): %s" sql e

(* Histogram as a fixed-bin vector over the payload domain. *)
let histogram_vector db sql key_values =
  match Executor.run_sql db sql with
  | Error e -> Alcotest.failf "execution failed (%s): %s" sql e
  | Ok { rows; _ } ->
    List.map
      (fun key ->
        let matching =
          List.find_opt (fun row -> Value.equal row.(0) (Value.Int key)) rows
        in
        match matching with
        | Some row -> Option.value ~default:0 (Value.to_int row.(1))
        | None -> 0)
      key_values

let local_sensitivity rows sql =
  let x = count (db_of rows) sql in
  List.fold_left
    (fun acc rows' -> max acc (abs (count (db_of rows') sql - x)))
    0 (neighbors rows)

(* A^(k) at distance 1: max local sensitivity over all neighbours. *)
let local_sensitivity_at_1 rows sql =
  List.fold_left
    (fun acc rows' -> max acc (local_sensitivity rows' sql))
    (local_sensitivity rows sql)
    (neighbors rows)

let elastic_at rows sql k =
  let db = db_of rows in
  let metrics = Metrics.compute db in
  let cat = Elastic.catalog_of_metrics metrics in
  match Elastic.analyze_sql cat sql with
  | Error r -> Alcotest.failf "analysis rejected (%s): %s" sql (Errors.to_string r)
  | Ok a -> (
    match Elastic.aggregate_columns a with
    | (_, _, s) :: _ -> Sens.eval s k
    | [] -> Alcotest.fail "no aggregate column")

(* --- generators ----------------------------------------------------------------- *)

let rows_gen n =
  QCheck.Gen.(
    list_size (int_range 1 n)
      (map2
         (fun k v -> [| Value.Int k; Value.Int v |])
         (oneofl key_domain) (oneofl payload_domain)))

let arb_dbs =
  QCheck.make
    ~print:(fun (a, b) ->
      let show rows =
        String.concat ";"
          (List.map
             (fun r -> Fmt.str "(%s,%s)" (Value.to_string r.(0)) (Value.to_string r.(1)))
             rows)
      in
      Fmt.str "a=[%s] b=[%s]" (show a) (show b))
    QCheck.Gen.(pair (rows_gen 4) (rows_gen 4))

let queries =
  [
    "SELECT COUNT(*) FROM a";
    "SELECT COUNT(*) FROM a WHERE v = 1";
    "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k";
    "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k WHERE a.v = 1 AND b.w = 2";
    "SELECT COUNT(*) FROM a x JOIN a y ON x.k = y.k";
    "SELECT COUNT(*) FROM a x JOIN a y ON x.k = y.k JOIN b ON y.k = b.k";
    "SELECT COUNT(*) FROM a LEFT JOIN b ON a.k = b.k";
    "SELECT COUNT(DISTINCT v) FROM a";
    "SELECT COUNT(*) FROM (SELECT k FROM a WHERE v = 2) s JOIN b ON s.k = b.k";
  ]

let soundness_test sql =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Fmt.str "ES(0) >= LS: %s" sql)
       ~count:25 arb_dbs
       (fun rows ->
         let ls = local_sensitivity rows sql in
         let es = elastic_at rows sql 0 in
         if float_of_int ls <= es +. 1e-9 then true
         else QCheck.Test.fail_reportf "LS=%d > ES(0)=%g" ls es))

let soundness_at_1_test sql =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Fmt.str "ES(1) >= A^(1): %s" sql)
       ~count:6
       (QCheck.make QCheck.Gen.(pair (rows_gen 3) (rows_gen 3)))
       (fun rows ->
         let a1 = local_sensitivity_at_1 rows sql in
         let es = elastic_at rows sql 1 in
         if float_of_int a1 <= es +. 1e-9 then true
         else QCheck.Test.fail_reportf "A1=%d > ES(1)=%g" a1 es))

let histogram_soundness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"histogram: L1 change <= cell sensitivity bound" ~count:25
       arb_dbs
       (fun rows ->
         let sql = "SELECT v, COUNT(*) FROM a GROUP BY v" in
         let vec db = histogram_vector db sql payload_domain in
         let x = vec (db_of rows) in
         let es = elastic_at rows sql 0 in
         List.for_all
           (fun rows' ->
             let y = vec (db_of rows') in
             let l1 =
               List.fold_left2 (fun acc a b -> acc + abs (a - b)) 0 x y
             in
             float_of_int l1 <= es +. 1e-9)
           (neighbors rows)))

let monotonicity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ES is non-decreasing in k" ~count:25 arb_dbs (fun rows ->
         List.for_all
           (fun sql ->
             let e k = elastic_at rows sql k in
             e 0 <= e 1 && e 1 <= e 2 && e 2 <= e 10)
           queries))

let suites =
  [
    ( "soundness",
      List.map soundness_test queries
      @ [
          soundness_at_1_test "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k";
          soundness_at_1_test "SELECT COUNT(*) FROM a x JOIN a y ON x.k = y.k";
          histogram_soundness;
          monotonicity;
        ] );
  ]

(* --- beta-smoothness across neighbours (appended) ----------------------------
   Theorem 2 relies on S being a beta-smooth upper bound: S(x) <= e^beta S(y)
   for neighbouring x, y. Our S is computed from the metrics of the actual
   database, so we check the property empirically: recompute the bound from
   each neighbour's metrics and compare. *)

let smooth_bound_of rows sql ~beta =
  let db = db_of rows in
  let metrics = Metrics.compute db in
  let cat = Elastic.catalog_of_metrics metrics in
  match Elastic.analyze_sql cat sql with
  | Error r -> Alcotest.failf "rejected (%s): %s" sql (Errors.to_string r)
  | Ok a -> (
    match Elastic.aggregate_columns a with
    | (_, _, s) :: _ ->
      (Flex_dp.Smooth.of_sens ~beta s).Flex_dp.Smooth.smooth_bound
    | [] -> Alcotest.fail "no aggregate column")

let beta_smoothness_test sql =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Fmt.str "S is beta-smooth: %s" sql)
       ~count:10
       (QCheck.make QCheck.Gen.(pair (rows_gen 3) (rows_gen 3)))
       (fun rows ->
         let beta = 0.05 in
         let sx = smooth_bound_of rows sql ~beta in
         List.for_all
           (fun rows' ->
             let sy = smooth_bound_of rows' sql ~beta in
             sx <= (exp beta *. sy) +. 1e-9 && sy <= (exp beta *. sx) +. 1e-9)
           (neighbors rows)))

let () =
  ignore beta_smoothness_test

let smoothness_suite =
  [
    beta_smoothness_test "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k";
    beta_smoothness_test "SELECT COUNT(*) FROM a x JOIN a y ON x.k = y.k";
  ]

let suites = suites @ [ ("beta-smoothness", smoothness_suite) ]

(* --- cross joins under bounded DP (appended) ----------------------------------
   The optional cross-join extension bounds the fan-out by the other side's
   constant cardinality; under bounded DP (tuple replacement) that bound is
   valid at every distance. Checked against the brute-force oracle. *)

let elastic_cross rows sql k =
  let db = db_of rows in
  let metrics = Metrics.compute db in
  let cat = Elastic.catalog_of_metrics ~cross_joins:true metrics in
  match Elastic.analyze_sql cat sql with
  | Error r -> Alcotest.failf "analysis rejected (%s): %s" sql (Errors.to_string r)
  | Ok a -> (
    match Elastic.aggregate_columns a with
    | (_, _, s) :: _ -> Sens.eval s k
    | [] -> Alcotest.fail "no aggregate column")

let cross_queries =
  [
    "SELECT COUNT(*) FROM a CROSS JOIN b";
    "SELECT COUNT(*) FROM a, b";
    "SELECT COUNT(*) FROM a x CROSS JOIN a y";
    "SELECT COUNT(*) FROM a CROSS JOIN b WHERE a.v = b.w";
  ]

let cross_soundness sql =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Fmt.str "cross join ES(0) >= LS: %s" sql)
       ~count:20 arb_dbs
       (fun rows ->
         let ls = local_sensitivity rows sql in
         let es = elastic_cross rows sql 0 in
         if float_of_int ls <= es +. 1e-9 then true
         else QCheck.Test.fail_reportf "LS=%d > ES(0)=%g" ls es))

let cross_suite =
  List.map cross_soundness cross_queries
  @ [
      Alcotest.test_case "cross joins rejected by default" `Quick (fun () ->
          let db = db_of ([ [| Value.Int 1; Value.Int 1 |] ], [ [| Value.Int 1; Value.Int 1 |] ]) in
          let cat = Elastic.catalog_of_metrics (Metrics.compute db) in
          match Elastic.analyze_sql cat "SELECT COUNT(*) FROM a CROSS JOIN b" with
          | Error (Errors.Unsupported Errors.Cross_join) -> ()
          | _ -> Alcotest.fail "expected Cross_join rejection");
      Alcotest.test_case "cross join stability is the other side's cardinality" `Quick
        (fun () ->
          let rows =
            ( List.init 3 (fun i -> [| Value.Int (i + 1); Value.Int 1 |]),
              List.init 4 (fun i -> [| Value.Int (i + 1); Value.Int 1 |]) )
          in
          (* non-self cross join: max(|a| * S(b), |b| * S(a)) = max(3, 4) = 4 *)
          Alcotest.(check (float 1e-9)) "stability" 4.0
            (elastic_cross rows "SELECT COUNT(*) FROM a CROSS JOIN b" 0);
          Alcotest.(check (float 1e-9)) "constant in k" 4.0
            (elastic_cross rows "SELECT COUNT(*) FROM a CROSS JOIN b" 50));
      Alcotest.test_case "cross join above an equijoin is still rejected" `Quick
        (fun () ->
          let db =
            db_of
              ( [ [| Value.Int 1; Value.Int 1 |] ],
                [ [| Value.Int 1; Value.Int 1 |] ] )
          in
          let cat = Elastic.catalog_of_metrics ~cross_joins:true (Metrics.compute db) in
          (* the equijoin's row bound is data-dependent, so no constant
             cardinality exists for the outer cross join *)
          match
            Elastic.analyze_sql cat
              "SELECT COUNT(*) FROM (SELECT a.k AS k FROM a JOIN b ON a.k = b.k) j \
               CROSS JOIN b"
          with
          | Error (Errors.Unsupported Errors.Cross_join) -> ()
          | Ok _ -> Alcotest.fail "expected rejection"
          | Error r -> Alcotest.failf "wrong rejection: %s" (Errors.to_string r));
    ]

let suites = suites @ [ ("cross-joins", cross_suite) ]
