module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Elastic = Flex_core.Elastic
module Histogram = Flex_core.Histogram

(* Fixture: trips per city; cities public with 4 rows, only 2 appear in
   trips — enumeration must add the missing 2 bins with zero counts. *)
let fixture () =
  let cities =
    Table.create ~name:"cities" ~columns:[ "id"; "name" ]
      [
        [| Value.Int 1; Value.String "sf" |];
        [| Value.Int 2; Value.String "nyc" |];
        [| Value.Int 3; Value.String "la" |];
        [| Value.Int 4; Value.String "austin" |];
      ]
  in
  let trips =
    Table.create ~name:"trips" ~columns:[ "id"; "city_id" ]
      [
        [| Value.Int 1; Value.Int 1 |];
        [| Value.Int 2; Value.Int 1 |];
        [| Value.Int 3; Value.Int 2 |];
      ]
  in
  let db = Database.of_tables [ cities; trips ] in
  let metrics = Metrics.compute db in
  Metrics.set_public metrics "cities";
  (db, metrics)

let sql =
  "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id GROUP BY c.name"

let analysis_of db metrics sql =
  ignore db;
  let cat = Elastic.catalog_of_metrics metrics in
  match Elastic.analyze_sql cat sql with
  | Ok a -> (cat, a)
  | Error r -> Alcotest.failf "rejected: %s" (Flex_core.Errors.to_string r)

let tests =
  [
    Alcotest.test_case "public keys are enumerable" `Quick (fun () ->
        let db, metrics = fixture () in
        let cat, a = analysis_of db metrics sql in
        Alcotest.(check bool) "enumerable" true (Histogram.enumerable cat a));
    Alcotest.test_case "private keys are not enumerable" `Quick (fun () ->
        let db, metrics = fixture () in
        let cat, a =
          analysis_of db metrics "SELECT t.city_id, COUNT(*) FROM trips t GROUP BY t.city_id"
        in
        Alcotest.(check bool) "not enumerable" false (Histogram.enumerable cat a));
    Alcotest.test_case "computed keys are not enumerable" `Quick (fun () ->
        let db, metrics = fixture () in
        let cat, a =
          analysis_of db metrics
            "SELECT c.id % 2, COUNT(*) FROM trips t JOIN cities c ON t.city_id = \
             c.id GROUP BY c.id % 2"
        in
        Alcotest.(check bool) "not enumerable" false (Histogram.enumerable cat a));
    Alcotest.test_case "missing bins appended with zero counts" `Quick (fun () ->
        let db, metrics = fixture () in
        let cat, a = analysis_of db metrics sql in
        let result = Executor.run_sql_exn db sql in
        Alcotest.(check int) "observed bins" 2 (List.length result.rows);
        match Histogram.enumerate cat db a result with
        | None -> Alcotest.fail "enumeration failed"
        | Some extended ->
          Alcotest.(check int) "all four cities" 4 (List.length extended.rows);
          (* the added bins carry count 0 and a real label *)
          let added =
            List.filteri (fun i _ -> i >= 2) extended.rows
          in
          List.iter
            (fun row ->
              (match row.(0) with
              | Value.String ("la" | "austin") -> ()
              | v -> Alcotest.failf "unexpected label %s" (Value.to_string v));
              Alcotest.(check bool) "zero count" true (row.(1) = Value.Int 0))
            added);
    Alcotest.test_case "existing bins unchanged by enumeration" `Quick (fun () ->
        let db, metrics = fixture () in
        let cat, a = analysis_of db metrics sql in
        let result = Executor.run_sql_exn db sql in
        match Histogram.enumerate cat db a result with
        | None -> Alcotest.fail "enumeration failed"
        | Some extended ->
          let prefix = List.filteri (fun i _ -> i < 2) extended.rows in
          Alcotest.(check bool) "prefix preserved" true (prefix = result.rows));
    Alcotest.test_case "bin cap prevents explosion" `Quick (fun () ->
        (* two public key columns whose product exceeds max_bins -> None *)
        let big =
          Table.create ~name:"labels" ~columns:[ "id"; "a"; "b" ]
            (List.init 200 (fun i ->
                 [| Value.Int i; Value.Int (i mod 200); Value.Int (i / 1) |]))
        in
        let facts =
          Table.create ~name:"facts" ~columns:[ "label_id" ]
            [ [| Value.Int 1 |]; [| Value.Int 2 |] ]
        in
        let db = Database.of_tables [ big; facts ] in
        let metrics = Metrics.compute db in
        Metrics.set_public metrics "labels";
        let sql =
          "SELECT l.a, l.b, COUNT(*) FROM facts f JOIN labels l ON f.label_id = \
           l.id GROUP BY l.a, l.b"
        in
        let cat, a = analysis_of db metrics sql in
        let result = Executor.run_sql_exn db sql in
        (* 200 x 200 = 40000 > max_bins: enumeration declined *)
        Alcotest.(check bool) "declined" true
          (Histogram.enumerate cat db a result = None));
  ]

let suites = [ ("histogram", tests) ]
