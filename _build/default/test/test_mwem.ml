module Rng = Flex_dp.Rng
module Mwem = Flex_dp.Mwem

let data = [| 100.0; 50.0; 10.0; 200.0; 40.0; 0.0; 30.0; 70.0 |]

let workload =
  List.concat
    [
      List.init 8 (fun i ->
          Mwem.subset_query ~label:(Fmt.str "point%d" i) ~domain_size:8 [ i ]);
      [
        Mwem.range_query ~label:"lo" ~domain_size:8 ~lo:0 ~hi:3;
        Mwem.range_query ~label:"hi" ~domain_size:8 ~lo:4 ~hi:7;
        Mwem.range_query ~label:"all" ~domain_size:8 ~lo:0 ~hi:7;
      ];
    ]

let tests =
  [
    Alcotest.test_case "queries evaluate as subset sums" `Quick (fun () ->
        let q = Mwem.range_query ~label:"r" ~domain_size:8 ~lo:0 ~hi:2 in
        Alcotest.(check (float 1e-9)) "sum" 160.0 (Mwem.answer data q));
    Alcotest.test_case "mass is preserved" `Quick (fun () ->
        let rng = Rng.create ~seed:1 () in
        let r = Mwem.run rng ~epsilon:1.0 ~rounds:5 ~data workload in
        let total a = Array.fold_left ( +. ) 0.0 a in
        Alcotest.(check (float 1e-6)) "mass" (total data) (total r.Mwem.synthetic));
    Alcotest.test_case "measured queries match round count" `Quick (fun () ->
        let rng = Rng.create ~seed:2 () in
        let r = Mwem.run rng ~epsilon:1.0 ~rounds:7 ~data workload in
        Alcotest.(check int) "rounds" 7 (List.length r.Mwem.measured));
    Alcotest.test_case "more budget means better workload error" `Quick (fun () ->
        let err epsilon rounds =
          (* average over repetitions to damp noise *)
          let total = ref 0.0 in
          for seed = 1 to 10 do
            let rng = Rng.create ~seed () in
            let r = Mwem.run rng ~epsilon ~rounds ~data workload in
            total := !total +. Mwem.workload_error ~data ~synthetic:r.Mwem.synthetic workload
          done;
          !total /. 10.0
        in
        let tight = err 0.01 4 in
        let loose = err 10.0 12 in
        Alcotest.(check bool)
          (Fmt.str "eps=10 (%.1f) beats eps=0.01 (%.1f)" loose tight)
          true (loose < tight));
    Alcotest.test_case "beats the uniform prior on a skewed histogram" `Quick (fun () ->
        let n = Array.fold_left ( +. ) 0.0 data in
        let uniform = Array.make 8 (n /. 8.0) in
        let base = Mwem.workload_error ~data ~synthetic:uniform workload in
        let total = ref 0.0 in
        for seed = 1 to 10 do
          let rng = Rng.create ~seed () in
          let r = Mwem.run rng ~epsilon:5.0 ~rounds:10 ~data workload in
          total := !total +. Mwem.workload_error ~data ~synthetic:r.Mwem.synthetic workload
        done;
        Alcotest.(check bool) "improves" true (!total /. 10.0 < base));
    Alcotest.test_case "invalid arguments" `Quick (fun () ->
        let rng = Rng.create () in
        Alcotest.check_raises "rounds" (Invalid_argument "Mwem.run: rounds must be >= 1")
          (fun () -> ignore (Mwem.run rng ~epsilon:1.0 ~rounds:0 ~data workload));
        Alcotest.check_raises "workload" (Invalid_argument "Mwem.run: empty workload")
          (fun () -> ignore (Mwem.run rng ~epsilon:1.0 ~rounds:1 ~data [])));
  ]

let suites = [ ("mwem", tests) ]
