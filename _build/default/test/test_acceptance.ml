(* Acceptance matrix: realistic analytics queries over the ride-sharing
   schema, each with its expected FLEX outcome — accepted (optionally with
   the exact elastic-sensitivity polynomial shape) or rejected with a
   specific reason class. This documents, in one place, the query surface a
   FLEX deployment supports. *)

module Rng = Flex_dp.Rng
module Sens = Flex_dp.Sens
module Metrics = Flex_engine.Metrics
module Elastic = Flex_core.Elastic
module Errors = Flex_core.Errors

type expectation =
  | Accept (* analysis succeeds *)
  | Accept_const (* ES is constant in k (public/unique-bounded joins) *)
  | Accept_growing (* ES grows with k (private join keys) *)
  | Reject_non_equijoin
  | Reject_cross
  | Reject_raw
  | Reject_arithmetic
  | Reject_agg of string
  | Reject_subquery
  | Reject_key_not_base
  | Reject_set_op
  | Reject_missing_vr

let ctx =
  lazy
    (let rng = Rng.create ~seed:99 () in
     let _db, metrics =
       Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes rng
     in
     Elastic.catalog_of_metrics metrics)

let cases : (string * expectation) list =
  [
    (* plain statistics *)
    ("SELECT COUNT(*) FROM trips", Accept_const);
    ("SELECT COUNT(*) FROM trips WHERE status = 'completed'", Accept_const);
    ("SELECT COUNT(DISTINCT driver_id) FROM trips", Accept_const);
    ("SELECT status, COUNT(*) FROM trips GROUP BY status", Accept_const);
    ("SELECT SUM(fare) FROM trips", Accept_const);
    ("SELECT AVG(fare) FROM trips WHERE city_id = 1", Accept_const);
    ("SELECT MIN(fare), MAX(fare) FROM trips", Accept_const);
    ("SELECT COUNT(*) FROM trips WHERE fare BETWEEN 10 AND 20", Accept_const);
    ("SELECT COUNT(*) FROM trips WHERE status IN ('completed', 'cancelled')", Accept_const);
    ("SELECT COUNT(*) FROM trips WHERE requested_at LIKE '2016-03%'", Accept_const);
    (* joins *)
    ("SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id", Accept_growing);
    ( "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id AND t.fare > d.rating",
      Accept_growing );
    ("SELECT COUNT(*) FROM trips t LEFT JOIN drivers d ON t.driver_id = d.id", Accept_growing);
    ("SELECT COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id", Accept_const);
    ("SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id", Accept_const);
    ( "SELECT COUNT(*) FROM trips a JOIN trips b ON a.rider_id = b.rider_id",
      Accept_growing );
    ( "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id GROUP BY c.name",
      Accept_const );
    ( "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id JOIN \
       analytics a ON d.id = a.driver_id",
      Accept_growing );
    ( "SELECT COUNT(*) FROM users u JOIN user_tags g ON u.id = g.user_id WHERE \
       g.tag = 'vip'",
      Accept_growing );
    (* derived tables and CTEs *)
    ( "SELECT COUNT(*) FROM (SELECT driver_id FROM trips WHERE status = 'completed') s",
      Accept_const );
    ( "WITH active AS (SELECT id FROM drivers WHERE status = 'active') SELECT \
       COUNT(*) FROM trips t JOIN active a ON t.driver_id = a.id",
      Accept_growing );
    ("SELECT n FROM (SELECT COUNT(*) AS n FROM trips) c", Accept_const);
    ( "SELECT cnt, COUNT(*) FROM (SELECT driver_id, COUNT(*) AS cnt FROM trips \
       GROUP BY driver_id) g GROUP BY cnt",
      Accept_const );
    (* public-subquery predicates *)
    ( "SELECT COUNT(*) FROM trips WHERE city_id IN (SELECT id FROM cities WHERE \
       country = 'us')",
      Accept_const );
    (* rejections: §3.7.1 *)
    ("SELECT COUNT(*) FROM trips a JOIN trips b ON a.fare > b.fare", Reject_non_equijoin);
    ( "SELECT COUNT(*) FROM trips a JOIN trips b ON lower(a.status) = lower(b.status)",
      Reject_non_equijoin );
    ("SELECT COUNT(*) FROM trips CROSS JOIN drivers", Reject_cross);
    ("SELECT COUNT(*) FROM trips, drivers", Reject_cross);
    ( "WITH a AS (SELECT COUNT(*) AS c FROM trips), b AS (SELECT COUNT(*) AS c \
       FROM drivers) SELECT COUNT(*) FROM a JOIN b ON a.c = b.c",
      Reject_key_not_base );
    ("SELECT id, fare FROM trips", Reject_raw);
    ("SELECT * FROM trips WHERE fare > 50", Reject_raw);
    ("SELECT driver_id FROM trips GROUP BY driver_id", Reject_raw);
    ("SELECT DISTINCT driver_id FROM trips", Reject_raw);
    ("SELECT COUNT(*) * 2 FROM trips", Reject_arithmetic);
    ("SELECT SUM(fare) / COUNT(*) FROM trips", Reject_arithmetic);
    ("SELECT MEDIAN(fare) FROM trips", Reject_agg "MEDIAN");
    ("SELECT STDDEV(fare) FROM trips", Reject_agg "STDDEV");
    ("SELECT COUNT(*) FROM trips UNION SELECT COUNT(*) FROM drivers", Reject_set_op);
    ( "SELECT COUNT(*) FROM trips WHERE driver_id IN (SELECT id FROM drivers \
       WHERE status = 'active')",
      Reject_subquery );
    ("SELECT SUM(status) FROM trips", Reject_missing_vr);
    ("SELECT SUM(t.fare + 1) FROM trips t", Reject_arithmetic);
  ]

let growing sens = Sens.degree sens >= 1

let check_case (sql, expectation) =
  let cat = Lazy.force ctx in
  let result = Elastic.analyze_sql cat sql in
  let fail fmt = Alcotest.failf ("%s: " ^^ fmt) sql in
  match (expectation, result) with
  | Accept, Ok _ -> ()
  | Accept_const, Ok a ->
    List.iter
      (fun (_, _, s) -> if growing s then fail "expected constant ES, got %s" (Sens.to_string s))
      (Elastic.aggregate_columns a)
  | Accept_growing, Ok a ->
    if not (List.exists (fun (_, _, s) -> growing s) (Elastic.aggregate_columns a))
    then fail "expected k-growing ES"
  | (Accept | Accept_const | Accept_growing), Error r ->
    fail "unexpectedly rejected: %s" (Errors.to_string r)
  | Reject_non_equijoin, Error (Errors.Unsupported (Errors.Non_equijoin _)) -> ()
  | Reject_cross, Error (Errors.Unsupported Errors.Cross_join) -> ()
  | Reject_raw, Error (Errors.Unsupported Errors.Raw_data_query) -> ()
  | Reject_arithmetic, Error (Errors.Unsupported Errors.Arithmetic_on_aggregate) -> ()
  | Reject_agg name, Error (Errors.Unsupported (Errors.Unsupported_aggregate f)) ->
    Alcotest.(check string)
      sql name
      (String.uppercase_ascii (Flex_sql.Ast.agg_func_name f))
  | Reject_subquery, Error (Errors.Unsupported Errors.Private_subquery_in_predicate) -> ()
  | Reject_key_not_base, Error (Errors.Unsupported (Errors.Join_key_not_base _)) -> ()
  | Reject_set_op, Error (Errors.Unsupported Errors.Set_operation) -> ()
  | Reject_missing_vr, Error (Errors.Unsupported (Errors.Missing_value_range _)) -> ()
  | _, Ok _ -> fail "unexpectedly accepted"
  | _, Error r -> fail "wrong rejection: %s" (Errors.to_string r)

let tests =
  List.map
    (fun (sql, expectation) ->
      let label = if String.length sql > 64 then String.sub sql 0 64 ^ "..." else sql in
      Alcotest.test_case label `Quick (fun () -> check_case (sql, expectation)))
    cases

let suites = [ ("acceptance", tests) ]
