module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Rng = Flex_dp.Rng
module Wpinq = Flex_baselines.Wpinq
module Pinq = Flex_baselines.Pinq
module Restricted = Flex_baselines.Restricted
module Global_sens = Flex_baselines.Global_sens
module Elastic = Flex_core.Elastic

let v_int i = Value.Int i

let table name rows =
  Table.create ~name ~columns:[ "k"; "v" ]
    (List.map (fun (k, v) -> [| v_int k; v_int v |]) rows)

let key0 (r : Value.t array) = r.(0)

(* --- wPINQ ------------------------------------------------------------------- *)

let wpinq_tests =
  [
    Alcotest.test_case "initial weights are 1" `Quick (fun () ->
        let ds = Wpinq.of_table (table "t" [ (1, 1); (2, 1) ]) in
        Alcotest.(check (float 1e-9)) "total" 2.0 (Wpinq.total_weight ds));
    Alcotest.test_case "join rescales weights to a/(|A|+|B|) pattern" `Quick (fun () ->
        (* key 1: 2 left rows, 1 right row -> each pair weight 1/(2+1) *)
        let l = Wpinq.of_table (table "l" [ (1, 1); (1, 2) ]) in
        let r = Wpinq.of_table (table "r" [ (1, 9) ]) in
        let j =
          Wpinq.join ~key_left:key0 ~key_right:key0 ~combine:(fun a _ -> a) l r
        in
        Alcotest.(check int) "two pairs" 2 (Wpinq.size j);
        Alcotest.(check (float 1e-9)) "total weight" (2.0 /. 3.0) (Wpinq.total_weight j));
    Alcotest.test_case "join weight never exceeds either side's contribution" `Quick
      (fun () ->
        (* the rescaled join is 1-stable: adding one row changes total weight <= 1 *)
        let rng = Rng.create ~seed:4 () in
        for _ = 1 to 50 do
          let mk n =
            List.init n (fun _ -> (1 + Rng.int rng 3, 1 + Rng.int rng 2))
          in
          let lrows = mk (1 + Rng.int rng 5) and rrows = mk (1 + Rng.int rng 5) in
          let total l r =
            Wpinq.total_weight
              (Wpinq.join ~key_left:key0 ~key_right:key0
                 ~combine:(fun a _ -> a)
                 (Wpinq.of_table (table "l" l))
                 (Wpinq.of_table (table "r" r)))
          in
          let base = total lrows rrows in
          let extra = (1 + Rng.int rng 3, 1) in
          let grown = total (extra :: lrows) rrows in
          if Float.abs (grown -. base) > 1.0 +. 1e-9 then
            Alcotest.failf "instability: %f -> %f" base grown
        done);
    Alcotest.test_case "noisy count concentrates around total weight" `Quick (fun () ->
        let rng = Rng.create ~seed:8 () in
        let ds = Wpinq.of_table (table "t" (List.init 100 (fun i -> (i, 1)))) in
        let avg = ref 0.0 in
        for _ = 1 to 200 do
          avg := !avg +. Wpinq.noisy_count rng ~epsilon:1.0 ds
        done;
        Alcotest.(check bool) "mean near 100" true (Float.abs ((!avg /. 200.0) -. 100.0) < 2.0));
    Alcotest.test_case "public join keeps weights" `Quick (fun () ->
        let l = Wpinq.of_table (table "l" [ (1, 1); (2, 2) ]) in
        let public = [ [| v_int 1; v_int 10 |]; [| v_int 2; v_int 20 |] ] in
        let j =
          Wpinq.join_public ~key_left:key0 ~key_right:key0
            ~combine:(fun a _ -> a)
            l public
        in
        Alcotest.(check (float 1e-9)) "unchanged" 2.0 (Wpinq.total_weight j));
    Alcotest.test_case "histograms sum to the dataset weight" `Quick (fun () ->
        let ds = Wpinq.of_table (table "t" [ (1, 1); (1, 2); (2, 1) ]) in
        let truth = Wpinq.true_histogram ~key:key0 ds in
        let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 truth in
        Alcotest.(check (float 1e-9)) "mass preserved" 3.0 total);
  ]

(* --- PINQ ---------------------------------------------------------------------- *)

let pinq_tests =
  [
    Alcotest.test_case "restricted join counts matched keys" `Quick (fun () ->
        let l = Pinq.of_table (table "l" [ (1, 1); (1, 2); (2, 1) ]) in
        let r = Pinq.of_table (table "r" [ (1, 9); (3, 9) ]) in
        let groups = Pinq.join_groups ~key_left:key0 ~key_right:key0 l r in
        Alcotest.(check int) "one matched key" 1 (List.length groups));
    Alcotest.test_case "one-to-one joins are counted exactly (modulo noise)" `Quick
      (fun () ->
        let rng = Rng.create ~seed:3 () in
        let l = Pinq.of_table (table "l" (List.init 50 (fun i -> (i, 1)))) in
        let r = Pinq.of_table (table "r" (List.init 50 (fun i -> (i, 2)))) in
        let avg = ref 0.0 in
        for _ = 1 to 100 do
          avg :=
            !avg +. Pinq.noisy_matched_key_count rng ~epsilon:1.0 ~key_left:key0 ~key_right:key0 l r
        done;
        Alcotest.(check bool) "mean near 50" true (Float.abs ((!avg /. 100.0) -. 50.0) < 3.0));
    Alcotest.test_case "one-to-many joins undercount joined rows" `Quick (fun () ->
        (* 3 left rows share key 1; true joined-row count is 3, PINQ sees 1 key *)
        let l = Pinq.of_table (table "l" [ (1, 1); (1, 2); (1, 3) ]) in
        let r = Pinq.of_table (table "r" [ (1, 9) ]) in
        let groups = Pinq.join_groups ~key_left:key0 ~key_right:key0 l r in
        Alcotest.(check int) "keys not rows" 1 (List.length groups));
  ]

(* --- restricted sensitivity ------------------------------------------------------ *)

let restricted_catalog =
  (* trips.driver_id bounded by 50; ids unique; cities public *)
  {
    Elastic.columns =
      (fun t ->
        match t with
        | "trips" -> Some [ "id"; "driver_id"; "city_id" ]
        | "drivers" -> Some [ "id" ]
        | "cities" -> Some [ "id" ]
        | _ -> None);
    mf =
      (fun { Elastic.table; column } ->
        match (table, column) with
        | "trips", "id" -> Some 1
        | "trips", "driver_id" -> Some 50
        | "trips", "city_id" -> Some 500
        | "drivers", "id" -> Some 1
        | "cities", "id" -> Some 1
        | _ -> None);
    vr = (fun _ -> None);
    is_public = (fun t -> t = "cities");
    is_unique = (fun _ -> false);
    table_rows = (fun _ -> Some 1000);
    cross_joins = false;
    total_rows = 1000;
  }

let parse sql =
  match Flex_sql.Parser.parse sql with
  | Ok q -> q
  | Error e -> Alcotest.fail e

let restricted_tests =
  [
    Alcotest.test_case "no join has sensitivity 1" `Quick (fun () ->
        match Restricted.global_sensitivity restricted_catalog (parse "SELECT COUNT(*) FROM trips") with
        | Ok gs -> Alcotest.(check (float 1e-9)) "gs" 1.0 gs
        | Error e -> Alcotest.failf "%a" Restricted.pp_error e);
    Alcotest.test_case "one-to-many join bounded by the key bound" `Quick (fun () ->
        match
          Restricted.global_sensitivity restricted_catalog
            (parse "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id")
        with
        | Ok gs -> Alcotest.(check (float 1e-9)) "gs" 50.0 gs
        | Error e -> Alcotest.failf "%a" Restricted.pp_error e);
    Alcotest.test_case "many-to-many join rejected" `Quick (fun () ->
        match
          Restricted.global_sensitivity restricted_catalog
            (parse "SELECT COUNT(*) FROM trips a JOIN trips b ON a.driver_id = b.driver_id")
        with
        | Error Restricted.Many_to_many_join -> ()
        | Ok gs -> Alcotest.failf "expected rejection, got %f" gs
        | Error e -> Alcotest.failf "wrong error: %a" Restricted.pp_error e);
    Alcotest.test_case "histogram doubles" `Quick (fun () ->
        match
          Restricted.global_sensitivity restricted_catalog
            (parse "SELECT city_id, COUNT(*) FROM trips GROUP BY city_id")
        with
        | Ok gs -> Alcotest.(check (float 1e-9)) "gs" 2.0 gs
        | Error e -> Alcotest.failf "%a" Restricted.pp_error e);
    Alcotest.test_case "non-counting query rejected" `Quick (fun () ->
        match
          Restricted.global_sensitivity restricted_catalog (parse "SELECT SUM(id) FROM trips")
        with
        | Error Restricted.Not_a_counting_query -> ()
        | _ -> Alcotest.fail "expected rejection");
  ]

(* --- global sensitivity ------------------------------------------------------------ *)

let global_tests =
  [
    Alcotest.test_case "count without join" `Quick (fun () ->
        match Global_sens.global_sensitivity (parse "SELECT COUNT(*) FROM t") with
        | Ok gs -> Alcotest.(check (float 1e-9)) "gs" 1.0 gs
        | Error _ -> Alcotest.fail "unexpected rejection");
    Alcotest.test_case "join is unbounded" `Quick (fun () ->
        match
          Global_sens.global_sensitivity
            (parse "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x")
        with
        | Error Global_sens.Join_unbounded -> ()
        | _ -> Alcotest.fail "expected rejection");
    Alcotest.test_case "table 1 capability matrix" `Quick (fun () ->
        (* the qualitative content of the paper's Table 1, checked by probes:
           restricted supports 1-1 and 1-n but not n-n; elastic supports all *)
        let one_to_many =
          parse "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id"
        in
        let many_to_many =
          parse "SELECT COUNT(*) FROM trips a JOIN trips b ON a.driver_id = b.driver_id"
        in
        Alcotest.(check bool) "restricted 1-n" true
          (Result.is_ok (Restricted.global_sensitivity restricted_catalog one_to_many));
        Alcotest.(check bool) "restricted n-n" false
          (Result.is_ok (Restricted.global_sensitivity restricted_catalog many_to_many));
        Alcotest.(check bool) "elastic n-n" true
          (Result.is_ok (Elastic.analyze restricted_catalog many_to_many));
        Alcotest.(check bool) "global join" false
          (Result.is_ok (Global_sens.global_sensitivity one_to_many)));
  ]

let suites =
  [
    ("wpinq", wpinq_tests);
    ("pinq", pinq_tests);
    ("restricted-sensitivity", restricted_tests);
    ("global-sensitivity", global_tests);
  ]

(* --- sample & aggregate (appended) ------------------------------------------ *)

module Sample_aggregate = Flex_baselines.Sample_aggregate

let sa_table n =
  Table.create ~name:"w" ~columns:[ "x" ]
    (List.init n (fun i -> [| Value.Float (float_of_int (i mod 100)) |]))

let sample_aggregate_tests =
  [
    Alcotest.test_case "partition is disjoint and complete" `Quick (fun () ->
        let rows = Array.init 17 (fun i -> i) in
        let parts = Sample_aggregate.partition ~blocks:5 rows in
        Alcotest.(check int) "5 blocks" 5 (List.length parts);
        Alcotest.(check int) "all elements" 17
          (List.fold_left (fun acc b -> acc + List.length b) 0 parts);
        let seen = Hashtbl.create 17 in
        List.iter (List.iter (fun x ->
            Alcotest.(check bool) "distinct" false (Hashtbl.mem seen x);
            Hashtbl.replace seen x ())) parts);
    Alcotest.test_case "noisy mean concentrates" `Quick (fun () ->
        let rng = Rng.create ~seed:6 () in
        let t = sa_table 2000 in
        let estimator = Sample_aggregate.mean_of_column t "x" in
        let total = ref 0.0 in
        for _ = 1 to 30 do
          match
            Sample_aggregate.release rng ~epsilon:1.0 ~blocks:20 ~lo:0.0 ~hi:100.0
              ~estimator t
          with
          | Ok v -> total := !total +. v
          | Error e -> Alcotest.failf "%a" Sample_aggregate.pp_error e
        done;
        let avg = !total /. 30.0 in
        (* true mean of 0..99 cycling = 49.5 *)
        Alcotest.(check bool) "mean near 49.5" true (Float.abs (avg -. 49.5) < 5.0));
    Alcotest.test_case "median estimator" `Quick (fun () ->
        let rng = Rng.create ~seed:7 () in
        let t = sa_table 999 in
        let estimator = Sample_aggregate.median_of_column t "x" in
        match
          Sample_aggregate.release rng ~epsilon:2.0 ~blocks:9 ~lo:0.0 ~hi:100.0
            ~estimator t
        with
        | Ok v -> Alcotest.(check bool) "median plausible" true (Float.abs (v -. 49.5) < 15.0)
        | Error e -> Alcotest.failf "%a" Sample_aggregate.pp_error e);
    Alcotest.test_case "degenerate inputs are rejected" `Quick (fun () ->
        let rng = Rng.create () in
        let t = sa_table 10 in
        let estimator = Sample_aggregate.mean_of_column t "x" in
        (match
           Sample_aggregate.release rng ~epsilon:1.0 ~blocks:1 ~lo:0.0 ~hi:1.0
             ~estimator t
         with
        | Error Sample_aggregate.Too_few_blocks -> ()
        | _ -> Alcotest.fail "expected Too_few_blocks");
        let empty = Table.create ~name:"e" ~columns:[ "x" ] [] in
        match
          Sample_aggregate.release rng ~epsilon:1.0 ~blocks:4 ~lo:0.0 ~hi:1.0
            ~estimator:(fun _ -> 0.0) empty
        with
        | Error Sample_aggregate.Empty_data -> ()
        | _ -> Alcotest.fail "expected Empty_data");
  ]

(* --- exponential mechanism (appended) ----------------------------------------- *)

module Exp_mech = Flex_dp.Exp_mech

let exp_mech_tests =
  [
    Alcotest.test_case "prefers high scores" `Quick (fun () ->
        let rng = Rng.create ~seed:9 () in
        let candidates = [| "low"; "mid"; "high" |] in
        let score = function "low" -> 0.0 | "mid" -> 5.0 | _ -> 10.0 in
        let wins = ref 0 in
        for _ = 1 to 300 do
          if Exp_mech.select rng ~epsilon:2.0 ~sensitivity:1.0 ~score candidates = "high"
          then incr wins
        done;
        Alcotest.(check bool) "high dominates" true (!wins > 250));
    Alcotest.test_case "distribution sums to one and is monotone in score" `Quick
      (fun () ->
        let candidates = [| 1.0; 2.0; 3.0 |] in
        let d =
          Exp_mech.distribution ~epsilon:1.0 ~sensitivity:1.0 ~score:Fun.id candidates
        in
        let total = Array.fold_left ( +. ) 0.0 d in
        Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total;
        Alcotest.(check bool) "monotone" true (d.(0) < d.(1) && d.(1) < d.(2)));
    Alcotest.test_case "uniform at tiny epsilon" `Quick (fun () ->
        let d =
          Exp_mech.distribution ~epsilon:1e-9 ~sensitivity:1.0 ~score:Fun.id
            [| 0.0; 100.0 |]
        in
        Alcotest.(check (float 1e-6)) "near uniform" 0.5 d.(0));
  ]

let suites =
  suites
  @ [ ("sample-aggregate", sample_aggregate_tests); ("exp-mech", exp_mech_tests) ]
