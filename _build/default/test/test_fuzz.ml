(* Robustness fuzzing: the analyzer, executor and feature extractor must be
   *total* on arbitrary well-formed ASTs — they may reject with a typed
   error, but must never raise an unexpected exception. The AST generator is
   shared with the pretty-printer round-trip test. *)

module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Executor = Flex_engine.Executor
module Elastic = Flex_core.Elastic
module Errors = Flex_core.Errors
module Features = Flex_sql.Features

let arb_query = Test_sql.arb_query

(* A fixture whose table/column names overlap the generator's vocabulary
   ("a", "b", "c", "t", "u", "fare", "city", "status"). *)
let fuzz_db =
  lazy
    (let t =
       Table.create ~name:"t" ~columns:[ "a"; "b"; "c"; "fare"; "city"; "status" ]
         (List.init 5 (fun i ->
              [|
                Value.Int i; Value.Int (i mod 2); Value.String "x";
                Value.Float (float_of_int (10 * i)); Value.String "sf";
                Value.String (if i mod 2 = 0 then "ok" else "bad");
              |]))
     in
     let u =
       Table.create ~name:"u" ~columns:[ "a"; "b"; "c"; "fare"; "city"; "status" ]
         (List.init 4 (fun i ->
              [|
                Value.Int (i + 2); Value.Int i; Value.Null;
                Value.Float 1.5; Value.String "nyc"; Value.String "ok";
              |]))
     in
     Database.of_tables [ t; u ])

let fuzz_catalog =
  lazy
    (let m = Metrics.compute (Lazy.force fuzz_db) in
     Metrics.set_public m "u";
     Elastic.catalog_of_metrics m)

let tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"analyzer is total on random ASTs" ~count:800 arb_query
         (fun q ->
           match Elastic.analyze (Lazy.force fuzz_catalog) q with
           | Ok _ | Error _ -> true
           | exception e ->
             QCheck.Test.fail_reportf "analyzer raised %s on:@.%s"
               (Printexc.to_string e) (Flex_sql.Pretty.to_string q)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"executor is total on random ASTs" ~count:800 arb_query
         (fun q ->
           let sql = Flex_sql.Pretty.to_string q in
           match Executor.run_sql (Lazy.force fuzz_db) sql with
           | Ok _ | Error _ -> true
           | exception e ->
             QCheck.Test.fail_reportf "executor raised %s on:@.%s"
               (Printexc.to_string e) sql));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"feature extraction is total on random ASTs" ~count:800
         arb_query (fun q ->
           match Features.analyze q with
           | _ -> true
           | exception e ->
             QCheck.Test.fail_reportf "features raised %s on:@.%s"
               (Printexc.to_string e) (Flex_sql.Pretty.to_string q)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mechanism is total on random ASTs" ~count:300 arb_query
         (fun q ->
           let rng = Flex_dp.Rng.create ~seed:3 () in
           let db = Lazy.force fuzz_db in
           let metrics = Metrics.compute db in
           Metrics.set_public metrics "u";
           let options = Flex_core.Flex.options ~epsilon:1.0 ~delta:1e-8 () in
           match Flex_core.Flex.run ~rng ~options ~db ~metrics q with
           | Ok _ | Error _ -> true
           | exception e ->
             QCheck.Test.fail_reportf "mechanism raised %s on:@.%s"
               (Printexc.to_string e) (Flex_sql.Pretty.to_string q)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"inline view equals CTE" ~count:200 arb_query (fun q ->
           (* A star-count over the same query expressed as a derived
              table and as a CTE must agree (when it runs at all) *)
           QCheck.assume (q.Flex_sql.Ast.ctes = []);
           let db = Lazy.force fuzz_db in
           let derived =
             {
               Flex_sql.Ast.ctes = [];
               body =
                 Flex_sql.Ast.Select
                   {
                     Flex_sql.Ast.empty_select with
                     projections =
                       [ Flex_sql.Ast.Proj_expr (Flex_sql.Ast.count_star, None) ];
                     from = [ Flex_sql.Ast.Derived { query = q; alias = "v" } ];
                   };
               order_by = [];
               limit = None;
               offset = None;
             }
           in
           let as_cte =
             {
               derived with
               Flex_sql.Ast.ctes =
                 [ { Flex_sql.Ast.cte_name = "v"; cte_columns = []; cte_query = q } ];
               body =
                 Flex_sql.Ast.Select
                   {
                     Flex_sql.Ast.empty_select with
                     projections =
                       [ Flex_sql.Ast.Proj_expr (Flex_sql.Ast.count_star, None) ];
                     from = [ Flex_sql.Ast.Table { name = "v"; alias = None } ];
                   };
             }
           in
           match (Executor.run db derived, Executor.run db as_cte) with
           | r1, r2 -> r1.Executor.rows = r2.Executor.rows
           | exception _ -> (
             (* both must fail together *)
             match Executor.run db as_cte with
             | _ -> false
             | exception _ -> true)));
  ]

let suites = [ ("fuzz", tests) ]
