module Value = Flex_engine.Value
module Table = Flex_engine.Table
module Database = Flex_engine.Database
module Metrics = Flex_engine.Metrics
module Metrics_live = Flex_engine.Metrics_live
module Rng = Flex_dp.Rng

let v i = Value.Int i

let tests =
  [
    Alcotest.test_case "bootstrap matches batch computation" `Quick (fun () ->
        let rng = Rng.create ~seed:3 () in
        let db, batch = Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes rng in
        let live = Metrics_live.of_database db in
        List.iter
          (fun table ->
            let t = Database.find db table in
            Array.iter
              (fun column ->
                Alcotest.(check (option int))
                  (Fmt.str "%s.%s mf" table column)
                  (Metrics.mf batch ~table ~column)
                  (Some (Metrics_live.mf live ~table ~column)))
              (Table.columns t))
          (Database.table_names db));
    Alcotest.test_case "insert raises mf, delete lowers it" `Quick (fun () ->
        let live = Metrics_live.create () in
        Metrics_live.register live ~table:"t" ~columns:[ "k" ];
        Alcotest.(check int) "empty" 0 (Metrics_live.mf live ~table:"t" ~column:"k");
        Metrics_live.insert_row live ~table:"t" [| v 1 |];
        Metrics_live.insert_row live ~table:"t" [| v 1 |];
        Metrics_live.insert_row live ~table:"t" [| v 2 |];
        Alcotest.(check int) "mf 2" 2 (Metrics_live.mf live ~table:"t" ~column:"k");
        Metrics_live.delete_row live ~table:"t" [| v 1 |];
        Alcotest.(check int) "mf back to 1" 1 (Metrics_live.mf live ~table:"t" ~column:"k");
        Metrics_live.delete_row live ~table:"t" [| v 1 |];
        Metrics_live.delete_row live ~table:"t" [| v 2 |];
        Alcotest.(check int) "empty again" 0 (Metrics_live.mf live ~table:"t" ~column:"k"));
    Alcotest.test_case "vr tracks extremes through deletes" `Quick (fun () ->
        let live = Metrics_live.create () in
        Metrics_live.register live ~table:"t" ~columns:[ "x" ];
        List.iter
          (fun i -> Metrics_live.insert_row live ~table:"t" [| v i |])
          [ 5; 1; 9; 3 ];
        Alcotest.(check (option (float 1e-9))) "range 8" (Some 8.0)
          (Metrics_live.vr live ~table:"t" ~column:"x");
        Metrics_live.delete_row live ~table:"t" [| v 9 |];
        Alcotest.(check (option (float 1e-9))) "range 4" (Some 4.0)
          (Metrics_live.vr live ~table:"t" ~column:"x");
        List.iter
          (fun i -> Metrics_live.delete_row live ~table:"t" [| v i |])
          [ 5; 1; 3 ];
        Alcotest.(check (option (float 1e-9))) "no numeric values" None
          (Metrics_live.vr live ~table:"t" ~column:"x"));
    Alcotest.test_case "update is delete plus insert" `Quick (fun () ->
        let live = Metrics_live.create () in
        Metrics_live.register live ~table:"t" ~columns:[ "k" ];
        Metrics_live.insert_row live ~table:"t" [| v 1 |];
        Metrics_live.insert_row live ~table:"t" [| v 1 |];
        Metrics_live.update_row live ~table:"t" ~before:[| v 1 |] ~after:[| v 2 |];
        Alcotest.(check int) "mf 1" 1 (Metrics_live.mf live ~table:"t" ~column:"k");
        Alcotest.(check int) "rows stable" 2 (Metrics_live.row_count live ~table:"t"));
    Alcotest.test_case "null values are not counted in mf" `Quick (fun () ->
        let live = Metrics_live.create () in
        Metrics_live.register live ~table:"t" ~columns:[ "k" ];
        Metrics_live.insert_row live ~table:"t" [| Value.Null |];
        Metrics_live.insert_row live ~table:"t" [| Value.Null |];
        Alcotest.(check int) "mf 0" 0 (Metrics_live.mf live ~table:"t" ~column:"k");
        Alcotest.(check int) "rows 2" 2 (Metrics_live.row_count live ~table:"t"));
    Alcotest.test_case "random trace stays consistent with recomputation" `Quick
      (fun () ->
        let rng = Rng.create ~seed:11 () in
        let live = Metrics_live.create () in
        Metrics_live.register live ~table:"t" ~columns:[ "k"; "x" ];
        let alive = ref [] in
        for _ = 1 to 300 do
          if !alive <> [] && Rng.bernoulli rng 0.4 then begin
            let i = Rng.int rng (List.length !alive) in
            let row = List.nth !alive i in
            Metrics_live.delete_row live ~table:"t" row;
            alive := List.filteri (fun j _ -> j <> i) !alive
          end
          else begin
            let row = [| v (Rng.int rng 5); v (Rng.int rng 50) |] in
            Metrics_live.insert_row live ~table:"t" row;
            alive := row :: !alive
          end
        done;
        (* recompute from scratch and compare *)
        let table = Table.create ~name:"t" ~columns:[ "k"; "x" ] (List.rev !alive) in
        Alcotest.(check int) "mf k" (Metrics.compute_mf table "k")
          (Metrics_live.mf live ~table:"t" ~column:"k");
        Alcotest.(check int) "mf x" (Metrics.compute_mf table "x")
          (Metrics_live.mf live ~table:"t" ~column:"x");
        Alcotest.(check (option (float 1e-9))) "vr x" (Metrics.compute_vr table "x")
          (Metrics_live.vr live ~table:"t" ~column:"x");
        Alcotest.(check int) "rows" (Table.row_count table)
          (Metrics_live.row_count live ~table:"t"));
    Alcotest.test_case "snapshot feeds the analysis" `Quick (fun () ->
        let rng = Rng.create ~seed:5 () in
        let db, base = Flex_workload.Uber.generate ~sizes:Flex_workload.Uber.small_sizes rng in
        let live = Metrics_live.of_database db in
        let snap = Metrics_live.snapshot ~base live in
        Alcotest.(check bool) "publics preserved" true (Metrics.is_public snap "cities");
        let cat = Flex_core.Elastic.catalog_of_metrics snap in
        match
          Flex_core.Elastic.analyze_sql cat
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id"
        with
        | Ok _ -> ()
        | Error r -> Alcotest.failf "rejected: %s" (Flex_core.Errors.to_string r));
  ]

let suites = [ ("metrics-live", tests) ]
